// bb::lint — the static design analyzer. Covers the acceptance gates of
// the lint milestone: every sample chip lints clean at the default
// severity floor; each seeded defect produces exactly the expected
// finding; parallel rule fan-out is byte-identical to serial; lint
// integrates with CompileSession (finalize hook, incremental re-runs)
// and CompileService (report cache over the chip cache).

#include "core/samples.hpp"
#include "core/session.hpp"
#include "lint/lint.hpp"
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bb;
using geom::Rect;
using tech::Layer;

namespace {

geom::Coord L(int n) { return geom::lambda(n); }

/// One bristle on `c` labeling a point of the artwork.
void label(cell::Cell& c, std::string name, cell::BristleFlavor flavor, Layer layer,
           geom::Point at) {
  cell::Bristle b;
  b.name = std::move(name);
  b.flavor = flavor;
  b.layer = layer;
  b.pos = at;
  c.addBristle(std::move(b));
}

/// A cell with one healthy enhancement transistor: horizontal diffusion
/// crossed by a vertical poly gate, everything labelled and driven.
cell::Cell floatingGateCell() {
  cell::Cell c("defect_float");
  c.addRect(Layer::Diffusion, Rect{0, L(4), L(20), L(6)});
  c.addRect(Layer::Poly, Rect{L(9), 0, L(11), L(10)});  // gate poly touches nothing else
  return c;
}

const char* kExpectedRules[] = {
    "erc-floating-gate",   "erc-isolated-island",   "erc-rail-short",
    "erc-self-connected-gate", "erc-unconnected-port", "erc-undriven-net",
    "erc-unloaded-net",    "front-dead-branch",     "front-duplicate-effect",
    "front-undriven-bus",  "front-unread-bus",      "front-unused-bus",
    "front-unused-field",  "front-width",
};

}  // namespace

// ---- registry ------------------------------------------------------------

TEST(LintRegistry, GlobalHasEveryBuiltinRule) {
  lint::RuleRegistry& reg = lint::RuleRegistry::global();
  for (const char* name : kExpectedRules) {
    const lint::Rule* r = reg.find(name);
    ASSERT_NE(r, nullptr) << name;
    EXPECT_EQ(r->name(), name);
    EXPECT_FALSE(r->description().empty());
  }
  EXPECT_EQ(reg.find("no-such-rule"), nullptr);
}

TEST(LintRegistry, NamesAreSortedAndIsolatedRegistriesWork) {
  lint::RuleRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  lint::registerBuiltinRules(reg);
  EXPECT_EQ(reg.size(), std::size(kExpectedRules));
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), std::size(kExpectedRules));
}

namespace {

class ShadowRule final : public lint::Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "erc-floating-gate";
  }
  [[nodiscard]] std::string_view description() const noexcept override { return "shadow"; }
  void check(const lint::LintContext&, std::vector<lint::Finding>&) const override {}
};

}  // namespace

TEST(LintRegistry, LaterRegistrationShadowsEarlier) {
  lint::RuleRegistry reg;
  lint::registerBuiltinRules(reg);
  reg.add(std::make_unique<ShadowRule>());
  const lint::Rule* r = reg.find("erc-floating-gate");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->description(), "shadow");
  // names() dedups: the shadowed name appears once.
  const auto names = reg.names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "erc-floating-gate"), 1);
}

// ---- samples lint clean --------------------------------------------------

TEST(Lint, AllSampleChipsLintCleanAtDefaultSeverity) {
  for (const icl::ChipDesc& desc :
       {core::samples::smallChip(), core::samples::largeChip(),
        core::samples::prototypeChip(), core::samples::segmentedChip()}) {
    auto compiled = core::compileChip(desc);
    ASSERT_TRUE(compiled) << desc.name;
    const lint::LintReport rep = lint::lintChip(**compiled);
    EXPECT_TRUE(rep.clean()) << desc.name << ":\n" << rep.summary();
    EXPECT_EQ(rep.rulesRun.size(), std::size(kExpectedRules)) << desc.name;
    // The Note-tier patterns do occur on real chips — that is exactly
    // why they are below the default floor.
    EXPECT_GT(rep.belowFloor, 0u) << desc.name;
  }
}

// ---- seeded defects ------------------------------------------------------

TEST(LintSeeded, FloatingGateIsReportedByExactlyThatRule) {
  const lint::LintReport rep = lint::lintCell(floatingGateCell());
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "erc-floating-gate");
  EXPECT_EQ(rep.findings[0].severity, icl::Severity::Warning);
  EXPECT_TRUE(rep.findings[0].hasAt);
}

TEST(LintSeeded, RailShortIsReportedByExactlyThatRule) {
  cell::Cell c("defect_short");
  c.addRect(Layer::Metal, Rect{0, 0, L(30), L(4)});  // one strap shorting both rails
  label(c, "vdd", cell::BristleFlavor::Power, Layer::Metal, {L(1), L(2)});
  label(c, "gnd", cell::BristleFlavor::Ground, Layer::Metal, {L(29), L(2)});
  const lint::LintReport rep = lint::lintCell(c);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "erc-rail-short");
  EXPECT_EQ(rep.findings[0].severity, icl::Severity::Error);
}

TEST(LintSeeded, SelfConnectedGateIsReportedByExactlyThatRule) {
  cell::Cell c("defect_selfgate");
  c.addRect(Layer::Diffusion, Rect{0, L(4), L(20), L(6)});
  c.addRect(Layer::Poly, Rect{L(9), 0, L(11), L(10)});
  // Strap the gate poly onto its own drain in metal: contact on the
  // gate's poly tail, metal over to the drain end, contact down.
  c.addRect(Layer::Contact, Rect{L(9), L(8), L(11), L(10)});
  c.addRect(Layer::Metal, Rect{L(9), L(8), L(19), L(10)});
  c.addRect(Layer::Metal, Rect{L(17), L(4), L(19), L(10)});
  c.addRect(Layer::Contact, Rect{L(17), L(4), L(19), L(6)});
  const lint::LintReport rep = lint::lintCell(c);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "erc-self-connected-gate");
}

TEST(LintSeeded, IsolatedIslandIsReportedByExactlyThatRule) {
  cell::Cell c("defect_island");
  c.addRect(Layer::Metal, Rect{0, 0, L(6), L(2)});  // connects to nothing
  const lint::LintReport rep = lint::lintCell(c);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "erc-isolated-island");
}

TEST(LintSeeded, UnconnectedPortIsReportedByExactlyThatRule) {
  cell::Cell c("defect_port");
  c.addRect(Layer::Metal, Rect{0, 0, L(6), L(2)});
  label(c, "out", cell::BristleFlavor::PadOut, Layer::Metal, {L(20), L(20)});  // off-strap
  lint::LintOptions opts;
  opts.suppress = {"erc-isolated-island"};  // the strap itself is a deliberate island here
  const lint::LintReport rep = lint::lintCell(c, opts);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "erc-unconnected-port");
  EXPECT_EQ(rep.suppressed, 1u);
}

TEST(LintSeeded, UndrivenBusIsReportedByExactlyThatRule) {
  using namespace icl;
  const ChipDesc desc =
      ChipBuilder("defect_undriven")
          .microcode(4, {field("op", 0, 3)})
          .dataWidth(4)
          .buses({"A", "B"})
          .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
          .element("register", "R0", {{"in", sym("B")}, {"out", sym("A")},
                                      {"load", expr("op==2")}, {"drive", expr("op==3")}})
          .buildOrDie();
  const lint::LintReport rep = lint::lintDesc(desc);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "front-undriven-bus");
  EXPECT_EQ(rep.findings[0].chipPath, "defect_undriven/bus:B");
}

TEST(LintSeeded, DeadConditionalBranchIsReportedByExactlyThatRule) {
  using namespace icl;
  const ChipDesc desc =
      ChipBuilder("defect_dead")
          .var("PROTO", true)
          .microcode(4, {field("op", 0, 3)})
          .dataWidth(4)
          .buses({"A"})
          .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
          .element("outport", "OUT", {{"bus", sym("A")}, {"sample", expr("op==2")}})
          .when("PROTO", {cond("PROTO", {},
                               {item("probe", "P0", {{"bus", sym("A")}, {"bit", num(0)}})})})
          .buildOrDie();
  const lint::LintReport rep = lint::lintDesc(desc);
  ASSERT_EQ(rep.findings.size(), 1u) << rep.summary();
  EXPECT_EQ(rep.findings[0].rule, "front-dead-branch");
}

TEST(LintSeeded, DuplicateEffectAndWidthRules) {
  using namespace icl;
  const ChipDesc desc =
      ChipBuilder("defect_misc")
          .microcode(4, {field("op", 0, 3)})
          .dataWidth(4)
          .buses({"A"})
          .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
          // Same decode on load and drive: reads and writes in one cycle.
          .element("register", "R0", {{"in", sym("A")}, {"out", sym("A")},
                                      {"load", expr("op==2")}, {"drive", expr("op==2")}})
          // Bit 9 of a 4-bit bus.
          .element("probe", "P0", {{"bus", sym("A")}, {"bit", num(9)}})
          .buildOrDie();
  const lint::LintReport rep = lint::lintDesc(desc);
  ASSERT_EQ(rep.findings.size(), 2u) << rep.summary();
  // Rule-name order (the deterministic report order).
  EXPECT_EQ(rep.findings[0].rule, "front-duplicate-effect");
  EXPECT_EQ(rep.findings[1].rule, "front-width");
}

// ---- suppression and severity floor -------------------------------------

TEST(Lint, SuppressionByRuleAndByInstance) {
  const cell::Cell c = floatingGateCell();

  lint::LintOptions byRule;
  byRule.suppress = {"erc-floating-gate"};
  const lint::LintReport r1 = lint::lintCell(c, byRule);
  EXPECT_TRUE(r1.clean());
  EXPECT_EQ(r1.suppressed, 1u);

  lint::LintOptions byInstance;
  byInstance.suppress = {"erc-floating-gate@defect_float/net#0"};
  const lint::LintReport r2 = lint::lintCell(c, byInstance);
  EXPECT_TRUE(r2.clean());
  EXPECT_EQ(r2.suppressed, 1u);

  lint::LintOptions wrongInstance;
  wrongInstance.suppress = {"erc-floating-gate@defect_float/net#999"};
  const lint::LintReport r3 = lint::lintCell(c, wrongInstance);
  ASSERT_EQ(r3.findings.size(), 1u);
  EXPECT_EQ(r3.suppressed, 0u);
}

TEST(Lint, SeverityFloorCountsInsteadOfReports) {
  const cell::Cell c = floatingGateCell();

  lint::LintOptions errorsOnly;
  errorsOnly.minSeverity = icl::Severity::Error;
  const lint::LintReport r1 = lint::lintCell(c, errorsOnly);
  EXPECT_TRUE(r1.clean());
  EXPECT_GE(r1.belowFloor, 1u);  // the floating-gate warning plus the notes

  lint::LintOptions everything;
  everything.minSeverity = icl::Severity::Note;
  const lint::LintReport r2 = lint::lintCell(c, everything);
  EXPECT_EQ(r2.belowFloor, 0u);
  // Floating gate + the two fractured-diffusion unloaded-net notes.
  EXPECT_EQ(r2.findings.size(), 3u) << r2.summary();
}

TEST(Lint, RuleSelectionRunsOnlyRequestedRules) {
  const cell::Cell c = floatingGateCell();
  lint::LintOptions opts;
  opts.rules = {"erc-rail-short", "erc-unloaded-net"};
  opts.minSeverity = icl::Severity::Note;
  const lint::LintReport rep = lint::lintCell(c, opts);
  EXPECT_EQ(rep.rulesRun, (std::vector<std::string>{"erc-rail-short", "erc-unloaded-net"}));
  ASSERT_EQ(rep.findings.size(), 2u);
  EXPECT_EQ(rep.findings[0].rule, "erc-unloaded-net");
}

// ---- determinism ---------------------------------------------------------

TEST(Lint, ParallelReportIsByteIdenticalToSerial) {
  auto compiled = core::compileChip(core::samples::largeChip());
  ASSERT_TRUE(compiled);
  lint::LintOptions serial;
  serial.minSeverity = icl::Severity::Note;  // plenty of findings to order
  serial.threads = 1;
  lint::LintOptions parallel = serial;
  parallel.threads = 0;  // full pool width

  const std::string serialJson = lint::lintChip(**compiled, serial).toJson();
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(lint::lintChip(**compiled, parallel).toJson(), serialJson) << round;
  }
}

TEST(Lint, JsonCarriesFindingsWithStableFingerprints) {
  const lint::LintReport rep = lint::lintCell(floatingGateCell());
  ASSERT_EQ(rep.findings.size(), 1u);
  const std::string json = rep.toJson();
  EXPECT_NE(json.find("\"version\": \"bb-lint-1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"erc-floating-gate\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \""), std::string::npos);
  // The fingerprint ignores layout position: a second cell with the same
  // defect shifted keeps the same finding identity.
  cell::Cell shifted("defect_float");
  shifted.addRect(Layer::Diffusion, Rect{L(40), L(44), L(60), L(46)});
  shifted.addRect(Layer::Poly, Rect{L(49), L(40), L(51), L(50)});
  const lint::LintReport rep2 = lint::lintCell(shifted);
  ASSERT_EQ(rep2.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].fingerprint(), rep2.findings[0].fingerprint());
  EXPECT_NE(rep.findings[0].at.x, rep2.findings[0].at.x);
}

// ---- session integration -------------------------------------------------

TEST(LintSession, FindingsJoinDiagnosticsAfterCompileDiagnostics) {
  auto opts = core::CompileOptions::builder()
                  .lint(true)
                  .lintMinSeverity(icl::Severity::Note)
                  .build();
  core::CompileSession sess(core::samples::smallChip(), opts);
  auto result = sess.run();
  ASSERT_TRUE(result);
  const auto report = sess.lintReport();
  ASSERT_NE(report, nullptr);
  EXPECT_FALSE(report->findings.empty());  // notes are visible at this floor
  // Every lint diagnostic sits after every compile diagnostic, in the
  // report's own order — the deterministic interleave.
  const auto& diags = sess.diagnostics().all();
  ASSERT_GE(diags.size(), report->findings.size());
  const std::size_t base = diags.size() - report->findings.size();
  for (std::size_t i = 0; i < report->findings.size(); ++i) {
    const lint::Finding& f = report->findings[i];
    EXPECT_NE(diags[base + i].message.find("[" + f.rule + "]"), std::string::npos);
    EXPECT_EQ(diags[base + i].severity, f.severity);
  }
}

TEST(LintSession, DisabledLintLeavesNoReport) {
  core::CompileSession sess(core::samples::smallChip());
  ASSERT_TRUE(sess.run());
  EXPECT_EQ(sess.lintReport(), nullptr);
}

TEST(LintSession, LintOptionEditReRunsOnlyFinalize) {
  core::CompileSession sess2(core::samples::smallChip());
  sess2.setIncremental(true);
  ASSERT_TRUE(sess2.runTo(core::Stage::Finalize));
  EXPECT_EQ(sess2.executionCount(core::Stage::Finalize), 1u);
  EXPECT_EQ(sess2.lintReport(), nullptr);

  auto opts = core::CompileOptions::builder().lint(true).build();
  const auto restart = sess2.setOptions(opts);
  ASSERT_TRUE(restart.has_value());
  EXPECT_EQ(*restart, core::Stage::Finalize);
  ASSERT_TRUE(sess2.runTo(core::Stage::Finalize));
  // Only finalize re-ran; the passes kept their single execution.
  EXPECT_EQ(sess2.executionCount(core::Stage::Finalize), 2u);
  EXPECT_EQ(sess2.executionCount(core::Stage::Pass1), 1u);
  EXPECT_EQ(sess2.executionCount(core::Stage::Pass2), 1u);
  EXPECT_EQ(sess2.executionCount(core::Stage::Pass3), 1u);
  EXPECT_NE(sess2.lintReport(), nullptr);

  // And an unchanged option set is a no-op.
  EXPECT_FALSE(sess2.setOptions(opts).has_value());
  EXPECT_EQ(sess2.executionCount(core::Stage::Finalize), 2u);
}

TEST(LintSession, LintThreadWidthDoesNotDirtyFinalize) {
  core::CompileSession sess(core::samples::smallChip());
  sess.setIncremental(true);
  auto opts = core::CompileOptions::builder().lint(true).build();
  ASSERT_FALSE(sess.setOptions(opts).has_value());  // nothing ran yet
  ASSERT_TRUE(sess.runTo(core::Stage::Finalize));
  // Reports are byte-identical at any width, so a width edit must not
  // invalidate the memoized finalize.
  opts.lint.threads = 7;
  EXPECT_FALSE(sess.setOptions(opts).has_value());
  EXPECT_EQ(sess.executionCount(core::Stage::Finalize), 1u);
}

// ---- service integration -------------------------------------------------

TEST(LintService, WarmCacheServesReportsWithZeroCompileStages) {
  svc::CompileService service;
  svc::LintRequest req;
  req.chip = svc::CompileRequest::ofDesc(core::samples::smallChip());
  req.lint.minSeverity = icl::Severity::Note;

  const svc::LintResponse cold = service.lint(req);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.chipCacheHit);
  EXPECT_FALSE(cold.reportCacheHit);
  EXPECT_FALSE(cold.report->findings.empty());
  EXPECT_EQ(service.stats().compilesExecuted, 1u);

  const svc::LintResponse warm = service.lint(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.chipCacheHit);
  EXPECT_TRUE(warm.reportCacheHit);
  EXPECT_EQ(warm.key, cold.key);
  EXPECT_EQ(warm.chipKey, cold.chipKey);
  EXPECT_EQ(warm.report.get(), cold.report.get());  // the very same report
  // Zero compile stages ran for the warm request.
  EXPECT_EQ(service.stats().compilesExecuted, 1u);
  EXPECT_EQ(service.stats().lintRequests, 2u);
  EXPECT_EQ(service.stats().lintReportHits, 1u);

  // New lint options on the warm chip: chip cache hit, report recompute.
  svc::LintRequest other = req;
  other.lint.suppress = {"erc-unloaded-net"};
  const svc::LintResponse recompute = service.lint(other);
  ASSERT_TRUE(recompute.ok());
  EXPECT_TRUE(recompute.chipCacheHit);
  EXPECT_FALSE(recompute.reportCacheHit);
  EXPECT_NE(recompute.key, cold.key);
  EXPECT_EQ(recompute.chipKey, cold.chipKey);
  EXPECT_EQ(service.stats().compilesExecuted, 1u);
}

TEST(LintService, ChipCacheEntryIsSharedWithPlainCompiles) {
  svc::CompileService service;
  const auto plain = service.compile(svc::CompileRequest::ofDesc(core::samples::smallChip()));
  ASSERT_TRUE(plain.ok());

  svc::LintRequest req;
  req.chip = svc::CompileRequest::ofDesc(core::samples::smallChip());
  // Even a lint block on the chip request must not fork the cache entry.
  req.chip.opts.lint.enabled = true;
  const svc::LintResponse resp = service.lint(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.chipCacheHit);
  EXPECT_EQ(resp.chipKey, plain.key);
  EXPECT_EQ(service.stats().compilesExecuted, 1u);
}

TEST(LintService, FailingCompileYieldsNoReport) {
  svc::CompileService service;
  svc::LintRequest req;
  req.chip = svc::CompileRequest::ofSource("broken", "this is not a chip description");
  const svc::LintResponse resp = service.lint(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.report, nullptr);
  EXPECT_TRUE(resp.diags.hasErrors());
}
