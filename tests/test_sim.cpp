/// Simulator unit tests: level algebra, gates, latches, precharged-bus
/// resolution and the two-phase clock discipline.

#include "sim/clock.hpp"
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace bb::sim {
namespace {

using netlist::GateKind;
using netlist::Level;
using netlist::LogicModel;

TEST(Levels, Algebra) {
  EXPECT_EQ(simNot(Level::L0), Level::L1);
  EXPECT_EQ(simNot(Level::LX), Level::LX);
  EXPECT_EQ(simAnd(Level::L0, Level::LX), Level::L0);  // 0 dominates
  EXPECT_EQ(simAnd(Level::L1, Level::LX), Level::LX);
  EXPECT_EQ(simOr(Level::L1, Level::LX), Level::L1);   // 1 dominates
  EXPECT_EQ(simOr(Level::L0, Level::LX), Level::LX);
  EXPECT_EQ(simXor(Level::L1, Level::L1), Level::L0);
  EXPECT_EQ(simXor(Level::L1, Level::LX), Level::LX);
  EXPECT_EQ(simAnd(Level::LZ, Level::L1), Level::LX);  // Z reads as X
}

TEST(Simulator, CombinationalChain) {
  LogicModel lm;
  const int a = lm.signal("a");
  const int b = lm.signal("b");
  const int n = lm.signal("n");
  const int out = lm.signal("out");
  lm.add(GateKind::Nand, {a, b}, n);
  lm.add(GateKind::Inv, {n}, out);
  Simulator sim(lm);
  sim.set(a, Level::L1);
  sim.set(b, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(out), Level::L1);
  sim.set(b, Level::L0);
  sim.settle();
  EXPECT_EQ(sim.get(out), Level::L0);
}

TEST(Simulator, XorParity) {
  LogicModel lm;
  const int a = lm.signal("a"), b = lm.signal("b"), c = lm.signal("c");
  const int out = lm.signal("out");
  lm.add(GateKind::Xor, {a, b, c}, out);
  Simulator sim(lm);
  for (int v = 0; v < 8; ++v) {
    sim.set(a, netlist::levelFromBool(v & 1));
    sim.set(b, netlist::levelFromBool(v & 2));
    sim.set(c, netlist::levelFromBool(v & 4));
    sim.settle();
    EXPECT_EQ(sim.get(out), netlist::levelFromBool(__builtin_parity(v))) << v;
  }
}

TEST(Simulator, LatchHoldsWhenDisabled) {
  LogicModel lm;
  const int d = lm.signal("d"), en = lm.signal("en"), q = lm.signal("q");
  lm.add(GateKind::Latch, {d, en}, q);
  Simulator sim(lm);
  sim.set(d, Level::L1);
  sim.set(en, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(q), Level::L1);
  sim.set(en, Level::L0);
  sim.set(d, Level::L0);
  sim.settle();
  EXPECT_EQ(sim.get(q), Level::L1);  // held
  sim.set(en, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(q), Level::L0);
}

TEST(Simulator, PrechargedBusWiredLogic) {
  LogicModel lm;
  const int bus = lm.signal("bus");
  lm.markBus(bus);
  const int pre = lm.signal("pre");
  const int g1 = lm.signal("g1"), g2 = lm.signal("g2");
  lm.add(GateKind::Precharge, {pre}, bus);
  lm.add(GateKind::PullDown, {g1, g2}, bus);  // series chain: both high
  Simulator sim(lm);
  sim.set(pre, Level::L1);
  sim.set(g1, Level::L0);
  sim.set(g2, Level::L0);
  sim.settle();
  EXPECT_EQ(sim.get(bus), Level::L1);
  // Precharge off: dynamic hold.
  sim.set(pre, Level::L0);
  sim.settle();
  EXPECT_EQ(sim.get(bus), Level::L1);
  // One gate high: still held (series chain).
  sim.set(g1, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(bus), Level::L1);
  // Both: pulled low.
  sim.set(g2, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(bus), Level::L0);
  // Pull-down beats simultaneous precharge (ratioed nMOS).
  sim.set(pre, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(bus), Level::L0);
}

TEST(Simulator, DriveConflictsGoX) {
  LogicModel lm;
  const int bus = lm.signal("bus");
  lm.markBus(bus);
  const int v1 = lm.signal("v1"), v0 = lm.signal("v0"), en = lm.signal("en");
  lm.add(GateKind::Drive, {v1, en}, bus);
  lm.add(GateKind::Drive, {v0, en}, bus);
  Simulator sim(lm);
  sim.set(v1, Level::L1);
  sim.set(v0, Level::L0);
  sim.set(en, Level::L1);
  sim.settle();
  EXPECT_EQ(sim.get(bus), Level::LX);
}

TEST(Simulator, OscillationGuardTerminates) {
  LogicModel lm;
  const int a = lm.signal("a");
  lm.add(GateKind::Inv, {a}, a);  // ring of one
  Simulator sim(lm);
  const int sweeps = sim.settle();
  EXPECT_LE(sweeps, 4 + 2 * static_cast<int>(lm.gates().size()) + 1);
}

TEST(Clock, PhasesNonOverlapping) {
  LogicModel lm;
  const int p1 = lm.signal("phi1");
  const int p2 = lm.signal("phi2");
  Simulator sim(lm);
  TwoPhaseClock clk(sim);
  for (int q = 0; q < 12; ++q) {
    clk.quarter();
    EXPECT_FALSE(isHigh(sim.get(p1)) && isHigh(sim.get(p2)))
        << "clock overlap at quarter " << q;
  }
  EXPECT_EQ(clk.cycleCount(), 3);
}

TEST(Clock, PhaseOrdering) {
  LogicModel lm;
  lm.signal("phi1");
  lm.signal("phi2");
  Simulator sim(lm);
  TwoPhaseClock clk(sim);
  clk.toPhi1();
  EXPECT_TRUE(sim.getBool("phi1"));
  EXPECT_FALSE(sim.getBool("phi2"));
  clk.toPhi2();
  EXPECT_FALSE(sim.getBool("phi1"));
  EXPECT_TRUE(sim.getBool("phi2"));
}

TEST(LogicModel, MergeUnifiesByName) {
  LogicModel a;
  const int x = a.signal("shared");
  a.add(GateKind::Inv, {x}, a.signal("aout"));
  LogicModel b;
  const int y = b.signal("shared");
  b.markBus(y);
  b.add(GateKind::Inv, {y}, b.signal("bout"));
  a.merge(b);
  EXPECT_EQ(a.gates().size(), 2u);
  EXPECT_TRUE(a.isBus(a.findSignal("shared")));
  EXPECT_GE(a.findSignal("bout"), 0);
}

TEST(Simulator, ReadDriveBusHelpers) {
  LogicModel lm;
  for (int i = 0; i < 4; ++i) lm.signal("v" + std::to_string(i));
  Simulator sim(lm);
  sim.driveBus("v", 4, 0b1010);
  sim.settle();
  EXPECT_EQ(sim.readBus("v", 4), 0b1010u);
}

}  // namespace
}  // namespace bb::sim
