/// Pass 2 tests: the PLA optimizer and the two-tape machine. The hard
/// contract is functional equivalence — optimization must never change
/// any control line's decode function.

#include "core/pass2_tapes.hpp"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

icl::MicrocodeDecl mcN(int width) {
  icl::MicrocodeDecl m;
  m.width = width;
  m.fields = {{"op", 0, width >= 4 ? 3 : width - 1, {}}};
  if (width > 4) m.fields.push_back({"x", 4, width - 1, {}});
  return m;
}

icl::Cube cubeOf(const char* expr, const icl::MicrocodeDecl& m) {
  icl::DiagnosticList d;
  auto sop = icl::compileDecode(expr, m, d);
  EXPECT_FALSE(d.hasErrors());
  EXPECT_EQ(sop.cubes.size(), 1u);
  return sop.cubes[0];
}

TEST(Pla, SharesIdenticalTerms) {
  const auto m = mcN(4);
  Pla pla(4, 2);
  pla.addCube(0, cubeOf("op==5", m));
  pla.addCube(1, cubeOf("op==5", m));
  EXPECT_EQ(pla.termCount(), 1u);
  EXPECT_EQ(pla.orPointCount(), 2u);
}

TEST(Pla, MergesAdjacentCubes) {
  const auto m = mcN(4);
  Pla pla(4, 1);
  pla.addCube(0, cubeOf("op==4", m));  // 100
  pla.addCube(0, cubeOf("op==5", m));  // 101 -> 10x
  const int merges = pla.optimize();
  EXPECT_GE(merges, 1);
  EXPECT_EQ(pla.termCount(), 1u);
  for (unsigned w = 0; w < 16; ++w) {
    EXPECT_EQ(pla.eval(0, w), w == 4 || w == 5) << w;
  }
}

TEST(Pla, MergeCascades) {
  // op==4..7 collapse to a single 1xx term.
  const auto m = mcN(4);
  Pla pla(4, 1);
  for (int v = 4; v <= 7; ++v) {
    pla.addCube(0, cubeOf(("op==" + std::to_string(v)).c_str(), m));
  }
  pla.optimize();
  EXPECT_EQ(pla.termCount(), 1u);
  // op is a 4-bit field: values 4..7 collapse to bit3==0 & bit2==1.
  EXPECT_EQ(pla.terms()[0].literals(), 2);
}

TEST(Pla, NoMergeAcrossDifferentOutputSets) {
  const auto m = mcN(4);
  Pla pla(4, 2);
  pla.addCube(0, cubeOf("op==4", m));
  pla.addCube(1, cubeOf("op==5", m));  // adjacent but different drivers
  EXPECT_EQ(pla.optimize(), 0);
  EXPECT_EQ(pla.termCount(), 2u);
}

TEST(Pla, OptimizePreservesFunction) {
  const auto m = mcN(6);
  Pla pla(6, 3);
  const char* exprs[3] = {"op==1 | op==3 | op==5 | op==7", "op==2 & x==1",
                          "op!=0"};
  icl::DiagnosticList d;
  std::vector<icl::SumOfProducts> ref;
  for (int o = 0; o < 3; ++o) {
    auto sop = icl::compileDecode(exprs[o], m, d);
    for (const auto& c : sop.cubes) pla.addCube(o, c);
    ref.push_back(sop);
  }
  ASSERT_FALSE(d.hasErrors());
  const std::size_t before = pla.termCount();
  pla.optimize();
  EXPECT_LE(pla.termCount(), before);
  for (int o = 0; o < 3; ++o) {
    for (unsigned long long w = 0; w < 64; ++w) {
      ASSERT_EQ(pla.eval(o, w), ref[static_cast<std::size_t>(o)].matches(w))
          << "output " << o << " word " << w;
    }
  }
}

TEST(TwoTape, RunsAndReportsStats) {
  const auto m = mcN(6);
  std::vector<TextArrayEntry> text = {
      {"c0", "op==1", 1},
      {"c1", "op==1", 2},       // shares the term with c0
      {"c2", "op==2 | op==3", 1},  // merges into one cube
      {"c3", "1", 2},
  };
  TwoTapeMachine machine(text, m);
  icl::DiagnosticList d;
  ASSERT_TRUE(machine.run(d)) << d.toString();
  const TapeStats& st = machine.stats();
  EXPECT_EQ(st.inputEntries, 4u);
  EXPECT_EQ(st.rawCubes, 5u);
  EXPECT_EQ(st.sharedTerms, 4u);   // op==1 shared
  EXPECT_EQ(st.finalTerms, 3u);    // op==2|op==3 merged
  EXPECT_GE(st.mergePasses, 1);
  EXPECT_GT(st.headMoves, 0);

  // The output tape must contain pad connections for every input bit and
  // end with End.
  std::size_t pads = 0;
  for (const SilInstr& i : machine.outputTape()) {
    if (i.op == SilOp::PadConn) ++pads;
  }
  EXPECT_EQ(pads, 6u);
  EXPECT_EQ(machine.outputTape().back().op, SilOp::End);
}

TEST(TwoTape, TapeFunctionEquivalence) {
  // Rebuild the decode functions from the silicon-code tape alone and
  // check them against the PLA — the tape IS the decoder.
  const auto m = mcN(6);
  std::vector<TextArrayEntry> text = {
      {"a", "op==1 | op==9", 1}, {"b", "x==2 & op==0", 1}, {"c", "op!=5", 2}};
  TwoTapeMachine machine(text, m);
  icl::DiagnosticList d;
  ASSERT_TRUE(machine.run(d));

  // Interpret the tape: collect terms and the OR matrix.
  std::vector<icl::Cube> terms;
  std::vector<std::vector<int>> outs(text.size());
  int cur = -1;
  for (const SilInstr& i : machine.outputTape()) {
    switch (i.op) {
      case SilOp::Term:
        cur = i.a;
        terms.emplace_back(m.width);
        break;
      case SilOp::CrossAnd:
        terms[static_cast<std::size_t>(cur)].bits[static_cast<std::size_t>(i.a)] =
            static_cast<std::int8_t>(i.b);
        break;
      case SilOp::CrossOr:
        outs[static_cast<std::size_t>(i.b)].push_back(i.a);
        break;
      default:
        break;
    }
  }
  for (std::size_t o = 0; o < text.size(); ++o) {
    for (unsigned long long w = 0; w < 64; ++w) {
      bool tapeSays = false;
      for (int t : outs[o]) {
        tapeSays |= terms[static_cast<std::size_t>(t)].matches(w);
      }
      ASSERT_EQ(tapeSays, machine.pla().eval(static_cast<int>(o), w))
          << "output " << o << " word " << w;
    }
  }
}

TEST(TwoTape, BadDecodeDiagnosed) {
  const auto m = mcN(4);
  TwoTapeMachine machine({{"c", "bogus==1", 1}}, m);
  icl::DiagnosticList d;
  EXPECT_FALSE(machine.run(d));
  EXPECT_TRUE(d.hasErrors());
}

// Parameterized sweep: growing microcode widths keep equivalence.
class PlaWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlaWidthSweep, RandomishFunctionEquivalence) {
  const int width = GetParam();
  icl::MicrocodeDecl m;
  m.width = width;
  m.fields = {{"f", 0, width - 1, {}}};
  Pla pla(width, 4);
  icl::DiagnosticList d;
  std::vector<icl::SumOfProducts> ref(4);
  // Deterministic pseudo-random value sets per output.
  unsigned long long seed = 0x9e3779b97f4a7c15ull;
  for (int o = 0; o < 4; ++o) {
    std::string expr;
    for (int k = 0; k < 3; ++k) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      const unsigned long long v = (seed >> 17) % (1ull << width);
      if (!expr.empty()) expr += " | ";
      expr += "f==" + std::to_string(v);
    }
    ref[static_cast<std::size_t>(o)] = icl::compileDecode(expr, m, d);
    for (const auto& c : ref[static_cast<std::size_t>(o)].cubes) pla.addCube(o, c);
  }
  ASSERT_FALSE(d.hasErrors());
  pla.optimize();
  for (int o = 0; o < 4; ++o) {
    for (unsigned long long w = 0; w < (1ull << width); ++w) {
      ASSERT_EQ(pla.eval(o, w), ref[static_cast<std::size_t>(o)].matches(w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PlaWidthSweep, ::testing::Values(4, 6, 8, 10));

}  // namespace
}  // namespace bb::core
