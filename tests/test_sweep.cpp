/// Sweep-line geometry core tests: unionArea vs the brute slab scan,
/// unionRects decomposition properties, coverage-gap queries, and the
/// index-filtered subtractRects against its sequential reference.

#include "extract/extract.hpp"
#include "geom/rect_index.hpp"
#include "geom/sweep.hpp"

#include <gtest/gtest.h>

#include <random>

namespace bb::geom {
namespace {

using extract::subtractRects;
using extract::subtractRectsBrute;

std::vector<Rect> randomRects(std::size_t n, unsigned seed, Coord span, Coord maxSize) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Coord> pos(-span, span);
  std::uniform_int_distribution<Coord> size(0, maxSize);  // 0 => some empties
  std::vector<Rect> rs;
  rs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    rs.emplace_back(x, y, x + size(rng), y + size(rng));
  }
  return rs;
}

TEST(SweepUnionArea, MatchesBruteOnRandomSets) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    for (const std::size_t n : {0u, 1u, 2u, 17u, 100u, 400u}) {
      const auto rs = randomRects(n, seed * 7919 + n, 200, 60);
      EXPECT_EQ(sweep::unionArea(rs), unionAreaBrute(rs))
          << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(SweepUnionArea, GeomEntryPointIsTheSweep) {
  const auto rs = randomRects(64, 42, 100, 40);
  EXPECT_EQ(unionArea(rs), sweep::unionArea(rs));
  EXPECT_EQ(unionArea(rs), unionAreaBrute(rs));
}

TEST(SweepUnionRects, DecompositionIsDisjointAndExact) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    const auto rs = randomRects(60, seed * 131, 120, 50);
    const auto pieces = sweep::unionRects(rs);
    Coord sum = 0;
    for (const Rect& p : pieces) {
      EXPECT_FALSE(p.isEmpty());
      sum += p.area();
    }
    // Disjoint + each piece inside the union + areas summing to the
    // union area <=> an exact decomposition.
    EXPECT_EQ(sum, unionArea(rs)) << "seed=" << seed;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      for (std::size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_FALSE(pieces[i].overlaps(pieces[j]))
            << toString(pieces[i]) << " vs " << toString(pieces[j]);
      }
    }
    // Every input rect must be fully covered by the decomposition.
    for (const Rect& r : rs) {
      if (r.isEmpty()) continue;
      EXPECT_FALSE(sweep::coverageGap(r, pieces).has_value()) << toString(r);
    }
  }
}

TEST(SweepUnionRects, MergesAbuttingTilesMaximally) {
  // Two abutting tiles with identical y span form ONE maximal rect.
  const std::vector<Rect> row = {{0, 0, 10, 10}, {10, 0, 25, 10}};
  const auto merged = sweep::unionRects(row);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Rect{0, 0, 25, 10}));

  // A plus shape decomposes into three x slabs (left arm, core, right
  // arm) — the core spans the full vertical bar while it persists.
  const std::vector<Rect> plus = {{-10, 0, 20, 10}, {0, -10, 10, 20}};
  const auto pieces = sweep::unionRects(plus);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], (Rect{-10, 0, 0, 10}));   // left arm closes first
  EXPECT_EQ(pieces[1], (Rect{0, -10, 10, 20}));  // full-height core
  EXPECT_EQ(pieces[2], (Rect{10, 0, 20, 10}));   // right arm
}

TEST(SweepCoverage, FullCoverAndWitnessGap) {
  sweep::CoverageQuery q;
  const Rect region{0, 0, 20, 20};
  // Covered by two abutting halves: no gap.
  EXPECT_FALSE(q.gap(region, {Rect{0, 0, 20, 11}, Rect{0, 11, 20, 20}}).has_value());
  // Empty region is trivially covered.
  EXPECT_FALSE(q.gap(Rect{5, 5, 5, 9}, std::vector<Rect>{}).has_value());
  // No rects at all: the witness is the whole region.
  EXPECT_EQ(q.gap(region, std::vector<Rect>{}), region);

  // A hole in the middle: the witness must be a non-empty uncovered
  // sub-rect of the region.
  const std::vector<Rect> withHole = {
      {0, 0, 20, 8}, {0, 12, 20, 20}, {0, 8, 9, 12}, {11, 8, 20, 12}};
  const auto g = q.gap(region, withHole);
  ASSERT_TRUE(g.has_value());
  EXPECT_FALSE(g->isEmpty());
  EXPECT_TRUE(region.contains(*g));
  for (const Rect& r : withHole) EXPECT_FALSE(g->overlaps(r)) << toString(*g);
  EXPECT_EQ(*g, (Rect{9, 8, 11, 12}));
}

TEST(SweepCoverage, GapAtRegionEdges) {
  sweep::CoverageQuery q;
  const Rect region{0, 0, 10, 10};
  // Uncovered slab before the first rect.
  EXPECT_EQ(q.gap(region, {Rect{4, 0, 10, 10}}), (Rect{0, 0, 4, 10}));
  // Uncovered slab after the last rect.
  EXPECT_EQ(q.gap(region, {Rect{0, 0, 7, 10}}), (Rect{7, 0, 10, 10}));
  // Uncovered run at the bottom of a slab.
  EXPECT_EQ(q.gap(region, {Rect{0, 3, 10, 10}}), (Rect{0, 0, 10, 3}));
}

TEST(SweepCoverage, IndexedOverloadMatchesVectorOverload) {
  sweep::CoverageQuery q;
  const auto rs = randomRects(120, 9001, 80, 30);
  const RectIndex idx(rs);
  for (unsigned seed = 0; seed < 24; ++seed) {
    std::mt19937 rng(seed + 500);
    std::uniform_int_distribution<Coord> pos(-80, 60);
    const Coord x = pos(rng), y = pos(rng);
    const Rect region{x, y, x + 25, y + 25};
    EXPECT_EQ(q.gap(region, rs).has_value(), q.gap(region, idx).has_value()) << toString(region);
  }
}

TEST(SweepCoverage, QueryIsReusableAcrossCalls) {
  sweep::CoverageQuery q;
  const Rect region{0, 0, 10, 10};
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(q.gap(region, {region}).has_value());
    EXPECT_TRUE(q.gap(region, {Rect{0, 0, 5, 10}}).has_value());
  }
}

TEST(SubtractRects, IndexedMatchesBruteBitForBit) {
  // Enough holes to cross the internal index threshold, including
  // duplicates, flush edges, full-span cuts and out-of-base holes.
  const Rect base{0, 0, 400, 400};
  std::vector<Rect> holes;
  std::mt19937 rng(77);
  std::uniform_int_distribution<Coord> pos(-40, 400);
  std::uniform_int_distribution<Coord> size(1, 90);
  for (int i = 0; i < 120; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    holes.emplace_back(x, y, x + size(rng), y + size(rng));
    if (i % 10 == 0) holes.push_back(holes.back());  // duplicate hole
  }
  holes.emplace_back(0, 100, 400, 120);  // full-width band, flush both sides
  holes.emplace_back(0, 0, 50, 50);      // flush with the base corner
  const auto brute = subtractRectsBrute(base, holes);
  const auto indexed = subtractRects(base, holes);
  EXPECT_EQ(indexed, brute);  // values AND order
  for (const Rect& r : indexed) EXPECT_FALSE(r.isEmpty());
}

TEST(SubtractRects, EmitTimeSkipOfDegenerateFragments) {
  // Hole flush with the base's left and top edges: the "above" and
  // "left" slices are degenerate and must never be emitted.
  const Rect base{0, 0, 10, 10};
  const auto out = subtractRectsBrute(base, {Rect{0, 4, 6, 10}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Rect{0, 0, 10, 4}));   // below
  EXPECT_EQ(out[1], (Rect{6, 4, 10, 10}));  // right
  Coord area = 0;
  for (const Rect& r : out) area += r.area();
  EXPECT_EQ(area, 100 - 36);
}

}  // namespace
}  // namespace bb::geom
