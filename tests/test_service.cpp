/// Tests for the compile service subsystem: the `core::Digest` /
/// fingerprint utilities and their canonical-toString hashing contract,
/// `svc::ChipCache` LRU/byte-budget/accounting behaviour,
/// `CompileSession` incremental recompilation (stage memoization,
/// `invalidateFrom`, option/description edits re-running only dirty
/// stages, bit-identical results), the thread-safe emitter registry, and
/// the `svc::CompileService` request path (content-addressed caching,
/// single-flight dedup, option-fingerprint sensitivity, and viewport
/// serving that never re-runs a compile stage on a warm cache).

#include "cell/hier_index.hpp"
#include "core/digest.hpp"
#include "core/fingerprint.hpp"
#include "core/samples.hpp"
#include "core/session.hpp"
#include "icl/builder.hpp"
#include "layout/cif.hpp"
#include "reps/emitter.hpp"
#include "svc/cache.hpp"
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

namespace bb {
namespace {

using core::CompileOptions;
using core::Digest;
using core::Stage;

std::string cifOf(const core::CompiledChip& chip) {
  std::ostringstream os;
  EXPECT_TRUE(reps::EmitterRegistry::global().emit(chip, "cif", os));
  return os.str();
}

// ---------------------------------------------------------------- digest

TEST(Digest, DeterministicAndSeparating) {
  EXPECT_EQ(Digest::of("hello"), Digest::of("hello"));
  EXPECT_NE(Digest::of("hello"), Digest::of("hellp"));
  EXPECT_NE(Digest::of(""), Digest::of("a"));
  // Length-delimited strings: ("ab","c") must not collide with ("a","bc").
  EXPECT_NE(Digest{}.update("ab").update("c").value(),
            Digest{}.update("a").update("bc").value());
}

TEST(Digest, TypedUpdates) {
  EXPECT_EQ(Digest{}.update(42).value(), Digest{}.update(42).value());
  EXPECT_NE(Digest{}.update(42).value(), Digest{}.update(43).value());
  EXPECT_NE(Digest{}.update(true).value(), Digest{}.update(false).value());
  EXPECT_NE(Digest{}.update(1.0).value(), Digest{}.update(1.0000000001).value());
  EXPECT_EQ(Digest{}.update(2.5).value(), Digest{}.update(2.5).value());
}

TEST(Digest, HexIs16LowercaseDigits) {
  const std::string h = Digest{}.update("chip").hex();
  EXPECT_EQ(h.size(), 16u);
  for (const char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << h;
  }
}

// ----------------------------------------------- canonical hashing contract

TEST(Fingerprint, CanonicalToStringIgnoresConstructionOrder) {
  using namespace bb::icl;
  // Same design, vars and params added in opposite orders.
  const ChipDesc a = ChipBuilder("canon")
                         .var("ALPHA", true)
                         .var("BETA", false)
                         .microcode(4, {field("op", 0, 3)})
                         .dataWidth(4)
                         .buses({"A", "B"})
                         .element("register", "R0",
                                  {{"in", sym("A")}, {"out", sym("B")},
                                   {"load", expr("op==1")}, {"drive", expr("op==2")}})
                         .buildOrDie();
  const ChipDesc b = ChipBuilder("canon")
                         .var("BETA", false)
                         .var("ALPHA", true)
                         .microcode(4, {field("op", 0, 3)})
                         .dataWidth(4)
                         .buses({"A", "B"})
                         .element("register", "R0",
                                  {{"drive", expr("op==2")}, {"load", expr("op==1")},
                                   {"out", sym("B")}, {"in", sym("A")}})
                         .buildOrDie();
  EXPECT_EQ(a.toString(), b.toString());
  EXPECT_EQ(Digest::of(a.toString()), Digest::of(b.toString()));
  EXPECT_EQ(core::requestDigest(a, {}), core::requestDigest(b, {}));
}

TEST(Fingerprint, OptionsSensitivity) {
  const CompileOptions base;
  EXPECT_EQ(core::optionsFingerprint(base), core::optionsFingerprint(CompileOptions{}));

  const CompileOptions withVar = CompileOptions::builder().var("PROTOTYPE", true).build();
  const CompileOptions noRoto = CompileOptions::builder().rotoRouter(false).build();
  const CompileOptions noOpt = CompileOptions::builder().optimizeDecoder(false).build();
  const CompileOptions rail = CompileOptions::builder().railCapacityUaPerLambda(500).build();
  EXPECT_NE(core::optionsFingerprint(base), core::optionsFingerprint(withVar));
  EXPECT_NE(core::optionsFingerprint(base), core::optionsFingerprint(noRoto));
  EXPECT_NE(core::optionsFingerprint(base), core::optionsFingerprint(noOpt));
  EXPECT_NE(core::optionsFingerprint(base), core::optionsFingerprint(rail));
}

TEST(Fingerprint, StageFingerprintsIsolateTheirInputs) {
  const CompileOptions base;
  const CompileOptions noRoto = CompileOptions::builder().rotoRouter(false).build();
  // A pass3-only edit fingerprints differently for pass3 and identically
  // for every earlier stage.
  EXPECT_EQ(core::stageOptionsFingerprint(Stage::Vote, base),
            core::stageOptionsFingerprint(Stage::Vote, noRoto));
  EXPECT_EQ(core::stageOptionsFingerprint(Stage::Pass1, base),
            core::stageOptionsFingerprint(Stage::Pass1, noRoto));
  EXPECT_EQ(core::stageOptionsFingerprint(Stage::Pass2, base),
            core::stageOptionsFingerprint(Stage::Pass2, noRoto));
  EXPECT_NE(core::stageOptionsFingerprint(Stage::Pass3, base),
            core::stageOptionsFingerprint(Stage::Pass3, noRoto));
  // Stages with no option inputs must still differ from each other.
  EXPECT_NE(core::stageOptionsFingerprint(Stage::Parse, base),
            core::stageOptionsFingerprint(Stage::Finalize, base));
}

TEST(Fingerprint, RequestDigestSeparatesDesignAndOptions) {
  const icl::ChipDesc small = core::samples::smallChip(4);
  const icl::ChipDesc wide = core::samples::smallChip(8);
  const CompileOptions noRoto = CompileOptions::builder().rotoRouter(false).build();
  EXPECT_EQ(core::requestDigest(small, {}), core::requestDigest(small, {}));
  EXPECT_NE(core::requestDigest(small, {}), core::requestDigest(wide, {}));
  EXPECT_NE(core::requestDigest(small, {}), core::requestDigest(small, noRoto));
}

// ----------------------------------------------------------------- cache

svc::ChipHandle dummyChip() { return std::make_shared<core::CompiledChip>(); }

TEST(ChipCache, HitMissAccountingAndLruEviction) {
  svc::ChipCache cache(1000);
  EXPECT_EQ(cache.find(1), nullptr);  // miss on empty

  cache.insert(1, dummyChip(), 400);
  cache.insert(2, dummyChip(), 400);
  EXPECT_EQ(cache.bytes(), 800u);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(2), nullptr);

  // Over budget: the least-recently-used entry (key 1 — key 2 was
  // touched last... both touched; order is 2 most-recent after find(2))
  cache.insert(3, dummyChip(), 400);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 800u);
  EXPECT_EQ(cache.find(1), nullptr);  // evicted: coldest
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);

  // Touch 2 so 3 becomes coldest; the next insert evicts 3, not 2.
  EXPECT_NE(cache.find(2), nullptr);
  cache.insert(4, dummyChip(), 400);
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_NE(cache.find(2), nullptr);
  EXPECT_NE(cache.find(4), nullptr);

  const svc::CacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 4u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 800u);
  EXPECT_EQ(s.budgetBytes, 1000u);
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  EXPECT_GT(s.hitRate(), 0.0);
  EXPECT_LT(s.hitRate(), 1.0);
}

TEST(ChipCache, OversizeEntryIsRefusedNotDestructive) {
  svc::ChipCache cache(1000);
  cache.insert(1, dummyChip(), 600);
  cache.insert(2, dummyChip(), 2000);  // alone exceeds the budget
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(1), nullptr);  // survivor untouched
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_EQ(cache.stats().rejectedOversize, 1u);
}

TEST(ChipCache, ReplacingAKeyKeepsByteAccountingRight) {
  svc::ChipCache cache(1000);
  cache.insert(7, dummyChip(), 300);
  cache.insert(7, dummyChip(), 500);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 500u);
}

TEST(ChipCache, ZeroBudgetDisablesCaching) {
  svc::ChipCache cache(0);
  cache.insert(1, dummyChip(), 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);
}

TEST(ChipCache, DefaultChargeUsesApproxBytes) {
  const icl::ChipDesc desc = core::samples::smallChip(4);
  auto compiled = core::compileChip(desc, {});
  ASSERT_TRUE(compiled);
  svc::ChipHandle chip(std::move(*compiled));
  const std::size_t approx = chip->approxBytes();
  EXPECT_GT(approx, sizeof(core::CompiledChip));

  svc::ChipCache cache(approx * 2);
  cache.insert(1, chip);
  EXPECT_EQ(cache.bytes(), approx);
}

// ------------------------------------------------- incremental compilation

TEST(IncrementalSession, Pass3EditRerunsOnlyPass3AndFinalize) {
  const icl::ChipDesc desc = core::samples::smallChip(4);
  core::CompileSession session(desc, {});
  session.setIncremental(true);
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  for (const Stage s : core::kAllStages) EXPECT_EQ(session.executionCount(s), 1u);
  const std::string before = cifOf(*session.chip());

  const CompileOptions edited = CompileOptions::builder().rotoRouter(false).build();
  const auto restarted = session.setOptions(edited);
  ASSERT_TRUE(restarted.has_value());
  EXPECT_EQ(*restarted, Stage::Pass3);
  ASSERT_TRUE(session.runTo(Stage::Finalize));

  EXPECT_EQ(session.executionCount(Stage::Parse), 1u);
  EXPECT_EQ(session.executionCount(Stage::Vote), 1u);
  EXPECT_EQ(session.executionCount(Stage::Pass1), 1u);
  EXPECT_EQ(session.executionCount(Stage::Pass2), 1u);
  EXPECT_EQ(session.executionCount(Stage::Pass3), 2u);
  EXPECT_EQ(session.executionCount(Stage::Finalize), 2u);

  // The memoized rerun is bit-identical to a fresh full compile.
  auto fresh = core::compileChip(desc, edited);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
  EXPECT_NE(cifOf(*session.chip()), before);  // the edit really changed the mask
}

TEST(IncrementalSession, Pass2EditRerunsFromPass2) {
  const icl::ChipDesc desc = core::samples::smallChip(4);
  core::CompileSession session(desc, {});
  session.setIncremental(true);
  ASSERT_TRUE(session.runTo(Stage::Finalize));

  const CompileOptions edited = CompileOptions::builder().optimizeDecoder(false).build();
  const auto restarted = session.setOptions(edited);
  ASSERT_TRUE(restarted.has_value());
  EXPECT_EQ(*restarted, Stage::Pass2);
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_EQ(session.executionCount(Stage::Pass1), 1u);
  EXPECT_EQ(session.executionCount(Stage::Pass2), 2u);
  EXPECT_EQ(session.executionCount(Stage::Pass3), 2u);

  auto fresh = core::compileChip(desc, edited);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
}

TEST(IncrementalSession, VarEditRerunsFromVote) {
  const icl::ChipDesc desc = core::samples::largeChip(8, 4);
  core::CompileSession session(desc, {});
  session.setIncremental(true);
  ASSERT_TRUE(session.runTo(Stage::Finalize));

  const CompileOptions edited = CompileOptions::builder().var("PROTOTYPE", true).build();
  const auto restarted = session.setOptions(edited);
  ASSERT_TRUE(restarted.has_value());
  EXPECT_EQ(*restarted, Stage::Vote);
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_EQ(session.executionCount(Stage::Parse), 1u);
  EXPECT_EQ(session.executionCount(Stage::Vote), 2u);
  EXPECT_EQ(session.executionCount(Stage::Pass1), 2u);

  auto fresh = core::compileChip(desc, edited);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
}

TEST(IncrementalSession, UnchangedOptionsAreANoOp) {
  core::CompileSession session(core::samples::smallChip(4), {});
  session.setIncremental(true);
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_FALSE(session.setOptions(CompileOptions{}).has_value());
  EXPECT_TRUE(session.finished());
  for (const Stage s : core::kAllStages) EXPECT_EQ(session.executionCount(s), 1u);
}

TEST(IncrementalSession, DescriptionEditRerunsFromVote) {
  core::CompileSession session(core::samples::smallChip(4), {});
  session.setIncremental(true);
  ASSERT_TRUE(session.runTo(Stage::Finalize));

  // Identical (canonically equal) description: every memo stays valid.
  EXPECT_FALSE(session.setDescription(core::samples::smallChip(4)).has_value());
  EXPECT_TRUE(session.finished());

  const icl::ChipDesc wider = core::samples::smallChip(8);
  const auto restarted = session.setDescription(wider);
  ASSERT_TRUE(restarted.has_value());
  EXPECT_EQ(*restarted, Stage::Vote);
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_EQ(session.executionCount(Stage::Parse), 1u);  // adoption memoized
  EXPECT_EQ(session.executionCount(Stage::Vote), 2u);

  auto fresh = core::compileChip(wider, {});
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
}

TEST(IncrementalSession, WithoutMemoizationInvalidateDegradesToPass1) {
  core::CompileSession session(core::samples::smallChip(4), {});
  // memoization off: no pass1/pass2 checkpoints exist
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_EQ(session.invalidateFrom(Stage::Pass3), Stage::Pass1);
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_EQ(session.executionCount(Stage::Vote), 1u);  // vote output memoized
  EXPECT_EQ(session.executionCount(Stage::Pass1), 2u);

  auto fresh = core::compileChip(core::samples::smallChip(4), {});
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
}

TEST(IncrementalSession, SourceSessionsSupportIncrementalEdits) {
  const icl::ChipDesc desc = core::samples::smallChip(4);
  core::CompileSession session(desc.toString(), CompileOptions{});
  session.setIncremental(true);
  ASSERT_TRUE(session.runTo(Stage::Finalize));

  const CompileOptions edited = CompileOptions::builder().rotoRouter(false).build();
  ASSERT_TRUE(session.setOptions(edited).has_value());
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  EXPECT_EQ(session.executionCount(Stage::Parse), 1u);  // never re-parsed

  auto fresh = core::compileChip(desc, edited);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
}

TEST(IncrementalSession, OptionsEditBeforeRunningChangesNothing) {
  core::CompileSession session(core::samples::smallChip(4), {});
  session.setIncremental(true);
  const CompileOptions edited = CompileOptions::builder().rotoRouter(false).build();
  EXPECT_FALSE(session.setOptions(edited).has_value());  // nothing ran yet
  ASSERT_TRUE(session.runTo(Stage::Finalize));
  for (const Stage s : core::kAllStages) EXPECT_EQ(session.executionCount(s), 1u);

  auto fresh = core::compileChip(core::samples::smallChip(4), edited);
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*session.chip()), cifOf(**fresh));
}

// --------------------------------------------------- emitter registry MT

class NoopEmitter final : public reps::Emitter {
 public:
  explicit NoopEmitter(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] std::string_view fileExtension() const noexcept override { return "txt"; }
  [[nodiscard]] std::string_view description() const noexcept override { return "noop"; }
  void emit(const core::CompiledChip&, std::ostream& os) const override { os << "noop"; }

 private:
  std::string name_;
};

TEST(EmitterRegistryThreaded, ConcurrentReadersWhileRegistering) {
  reps::EmitterRegistry reg;
  reps::registerBuiltinEmitters(reg);
  constexpr int kCustom = 64;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> lookups{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_NE(reg.find("cif"), nullptr);
        EXPECT_GE(reg.names().size(), 11u);
        EXPECT_GE(reg.size(), 11u);
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < kCustom; ++i) {
    reg.add(std::make_unique<NoopEmitter>("custom" + std::to_string(i)));
    std::this_thread::yield();
  }
  stop = true;
  for (std::thread& t : readers) t.join();

  EXPECT_GT(lookups.load(), 0u);
  for (int i = 0; i < kCustom; ++i) {
    EXPECT_NE(reg.find("custom" + std::to_string(i)), nullptr);
  }
}

// ---------------------------------------------------------------- service

TEST(CompileService, WarmRequestsHitTheCache) {
  svc::CompileService service;
  const auto req = svc::CompileRequest::ofDesc(core::samples::smallChip(4));

  const svc::CompileResponse cold = service.compile(req);
  ASSERT_TRUE(cold.ok()) << cold.diags.toString();
  EXPECT_FALSE(cold.cacheHit);
  EXPECT_NE(cold.key, 0u);

  const svc::CompileResponse warm = service.compile(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.key, cold.key);
  EXPECT_EQ(warm.chip.get(), cold.chip.get());  // the same immutable chip

  const svc::ServiceStats s = service.stats();
  EXPECT_EQ(s.compileRequests, 2u);
  EXPECT_EQ(s.compilesExecuted, 1u);
  EXPECT_EQ(s.cacheHits, 1u);
  EXPECT_EQ(s.cacheMisses, 1u);
}

TEST(CompileService, OptionFingerprintMakesDifferentOptionsMiss) {
  svc::CompileService service;
  const icl::ChipDesc desc = core::samples::smallChip(4);
  const auto a = service.compile(svc::CompileRequest::ofDesc(desc));
  const auto b = service.compile(svc::CompileRequest::ofDesc(
      desc, CompileOptions::builder().rotoRouter(false).build()));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.key, b.key);
  EXPECT_FALSE(b.cacheHit);
  EXPECT_EQ(service.stats().compilesExecuted, 2u);
}

TEST(CompileService, SourceAndTypedRequestsShareOneEntry) {
  svc::CompileService service;
  const icl::ChipDesc desc = core::samples::smallChip(4);
  const auto typed = service.compile(svc::CompileRequest::ofDesc(desc));
  ASSERT_TRUE(typed.ok());
  const auto text =
      service.compile(svc::CompileRequest::ofSource("small", desc.toString()));
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(text.cacheHit);
  EXPECT_EQ(text.key, typed.key);
  EXPECT_EQ(service.stats().compilesExecuted, 1u);
}

TEST(CompileService, ParseFailureCarriesDiagnostics) {
  svc::CompileService service;
  const auto resp = service.compile(svc::CompileRequest::ofSource("bad", "chip {{{"));
  EXPECT_FALSE(resp.ok());
  EXPECT_TRUE(resp.diags.hasErrors());
  EXPECT_EQ(resp.key, 0u);
  EXPECT_EQ(service.stats().failures, 1u);
  EXPECT_FALSE(service.keyFor(svc::CompileRequest::ofSource("bad", "chip {{{")).has_value());
}

TEST(CompileService, ConcurrentDuplicatesAreSingleFlighted) {
  svc::CompileService service;
  std::vector<svc::CompileRequest> reqs;
  for (int i = 0; i < 16; ++i) {
    reqs.push_back(svc::CompileRequest::ofDesc(core::samples::smallChip(4)));
  }
  const auto responses = service.compileAll(std::move(reqs));
  ASSERT_EQ(responses.size(), 16u);
  for (const auto& r : responses) {
    ASSERT_TRUE(r.ok()) << r.diags.toString();
    EXPECT_EQ(r.chip.get(), responses.front().chip.get());
  }
  // One compile total: everyone else hit the cache or waited on the twin.
  const svc::ServiceStats s = service.stats();
  EXPECT_EQ(s.compilesExecuted, 1u);
  EXPECT_EQ(s.cacheHits + s.dedupedInFlight + s.compilesExecuted, 16u + s.dedupedInFlight);
}

TEST(CompileService, MixedBatchCompilesEachUniqueDesignOnce) {
  svc::CompileService service;
  std::vector<svc::CompileRequest> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(svc::CompileRequest::ofDesc(core::samples::smallChip(4)));
    reqs.push_back(svc::CompileRequest::ofDesc(core::samples::smallChip(8)));
  }
  const auto responses = service.compileAll(std::move(reqs));
  for (const auto& r : responses) ASSERT_TRUE(r.ok());
  EXPECT_EQ(service.stats().compilesExecuted, 2u);
}

TEST(CompileService, ViewportOnWarmCacheRunsZeroCompileStages) {
  svc::CompileService service;
  const auto req = svc::CompileRequest::ofDesc(core::samples::smallChip(4));
  const auto cold = service.compile(req);
  ASSERT_TRUE(cold.ok());

  // Full emission for reference (also a cache hit — chip already compiled).
  const svc::EmitResponse full = service.emit(req, "cif");
  ASSERT_TRUE(full.ok);
  EXPECT_TRUE(full.cacheHit);

  const geom::Rect bb = cold.chip->flatTop().bbox();
  svc::ViewportRequest vp;
  vp.chip = req;
  vp.window = geom::Rect{bb.x0, bb.y0, bb.x0 + bb.width() / 4, bb.y0 + bb.height() / 4};
  vp.tileSize = geom::lambda(200);
  const std::uint64_t compilesBefore = service.stats().compilesExecuted;
  const svc::EmitResponse tile = service.viewport(vp);
  ASSERT_TRUE(tile.ok) << tile.diags.toString();
  EXPECT_TRUE(tile.cacheHit);
  EXPECT_EQ(service.stats().compilesExecuted, compilesBefore);  // zero stages ran
  EXPECT_LT(tile.payload.size(), full.payload.size());  // output-sensitive
  EXPECT_NE(tile.payload.find("DS"), std::string::npos);  // real CIF

  const svc::ServiceStats s = service.stats();
  EXPECT_EQ(s.viewportRequests, 1u);
  EXPECT_EQ(s.emitRequests, 1u);  // viewport is not double-counted as emit
}

TEST(CompileService, WholeArtworkViewportMatchesPlainEmission) {
  svc::CompileService service;
  const auto req = svc::CompileRequest::ofDesc(core::samples::smallChip(4));
  const svc::EmitResponse full = service.emit(req, "cif");
  ASSERT_TRUE(full.ok);

  svc::ViewportRequest vp;
  vp.chip = req;  // window unset: whole artwork, single tile
  const svc::EmitResponse whole = service.viewport(vp);
  ASSERT_TRUE(whole.ok);
  EXPECT_EQ(whole.payload, full.payload);
}

TEST(CompileService, UnknownFormatIsDiagnosedNotFatal) {
  svc::CompileService service;
  const auto resp =
      service.emit(svc::CompileRequest::ofDesc(core::samples::smallChip(4)), "nope");
  EXPECT_FALSE(resp.ok);
  EXPECT_TRUE(resp.diags.hasErrors());
}

TEST(CompileService, EvictionKeepsServingCorrectChips) {
  // A budget sized for roughly one chip: the second design evicts the
  // first, and re-requesting the first recompiles it correctly.
  const icl::ChipDesc a = core::samples::smallChip(4);
  const icl::ChipDesc b = core::samples::smallChip(8);
  auto probe = core::compileChip(a, {});
  ASSERT_TRUE(probe);
  svc::ServiceOptions opts;
  opts.cacheBudgetBytes = (*probe)->approxBytes() * 3 / 2;
  svc::CompileService service(opts);

  ASSERT_TRUE(service.compile(svc::CompileRequest::ofDesc(a)).ok());
  ASSERT_TRUE(service.compile(svc::CompileRequest::ofDesc(b)).ok());
  const auto again = service.compile(svc::CompileRequest::ofDesc(a));
  ASSERT_TRUE(again.ok());
  EXPECT_GE(service.cache().stats().evictions + service.cache().stats().rejectedOversize,
            1u);
  // Whatever the eviction pattern, the served mask is always right.
  auto fresh = core::compileChip(a, {});
  ASSERT_TRUE(fresh);
  EXPECT_EQ(cifOf(*again.chip), cifOf(**fresh));
}

// ------------------------------------------- approxBytes cache charging

TEST(ChipCacheCharge, MaterializedArtworkChargedWithinTwiceHandCount) {
  // Regression for the cache under-charge: approxBytes used to count only
  // the shared cell library, so a prewarmed chip's flattens (which
  // replicate every instance) and hierarchical index slipped past the
  // byte budget. The charge must grow when the derived artwork
  // materializes, and the growth must stay within 2x of an independent
  // hand count of that artwork's raw storage.
  auto compiled = core::compileChip(core::samples::smallChip(4));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  const core::CompiledChip cold = (*compiled)->clone();  // derived caches start null
  const std::size_t base = cold.approxBytes();

  const cell::FlatLayout& ft = cold.flatTop();
  const cell::FlatLayout& fc = cold.flatCore();
  const cell::HierIndex& hier = cold.hierTop();
  const std::size_t warm = cold.approxBytes();

  const auto rawFlatBytes = [](const cell::FlatLayout& f) {
    std::size_t b = 0;
    for (tech::Layer l : tech::kAllLayers) b += f.on(l).size() * sizeof(geom::Rect);
    for (const auto& [pl, p] : f.polygons) {
      (void)pl;
      b += p.pts.size() * sizeof(geom::Point);
    }
    return b;
  };
  std::size_t hand = rawFlatBytes(ft) + rawFlatBytes(fc) + rawFlatBytes(hier.residual());
  for (const cell::HierUnit& u : hier.units()) hand += rawFlatBytes(u.flat);
  hand += hier.placements().size() * sizeof(cell::HierPlacement);
  ASSERT_GT(hand, 0u);

  const std::size_t delta = warm - base;
  EXPECT_GE(delta, hand);
  EXPECT_LE(delta, 2 * hand);
}

// ------------------------------------------------ hierarchical viewport

TEST(Service, HierarchicalViewportResolvesOnlyWindowInstances) {
  svc::CompileService service;
  const icl::ChipDesc desc = core::samples::smallChip(4);
  const auto first = service.compile(svc::CompileRequest::ofDesc(desc));
  ASSERT_TRUE(first.ok()) << first.diags.toString();
  // Prewarm built the hierarchical index before the chip entered the
  // cache, so the warm viewport below performs const reads only.
  ASSERT_TRUE(first.chip->hierTopBuilt());
  const cell::HierIndex& hier = first.chip->hierTop();
  const std::uint64_t before = hier.instancesMaterialized();
  const std::size_t total = hier.placements().size();
  ASSERT_GT(total, 1u);

  const geom::Rect bb = hier.bbox();
  svc::ViewportRequest req;
  req.chip = svc::CompileRequest::ofDesc(desc);
  req.hierarchical = true;
  req.window = geom::Rect{bb.x0, bb.y0, bb.x0 + bb.width() / 8, bb.y0 + bb.height() / 8};
  const svc::ServiceStats statsBefore = service.stats();
  const auto resp = service.viewport(req);
  ASSERT_TRUE(resp.ok) << resp.diags.toString();
  EXPECT_TRUE(resp.cacheHit);
  // Warm-path contract: zero compile stages ran for the viewport.
  EXPECT_EQ(service.stats().compilesExecuted, statsBefore.compilesExecuted);

  // The lazy-resolution contract: only the placements whose world boxes
  // touch the corner window were materialized, not the whole chip.
  const std::uint64_t resolved = hier.instancesMaterialized() - before;
  EXPECT_GT(resolved, 0u);
  EXPECT_LT(resolved, total);
}

TEST(Service, WholeArtworkHierarchicalViewportIsTheSymbolCallMask) {
  svc::CompileService service;
  const icl::ChipDesc desc = core::samples::smallChip(4);
  const auto first = service.compile(svc::CompileRequest::ofDesc(desc));
  ASSERT_TRUE(first.ok()) << first.diags.toString();

  svc::ViewportRequest req;
  req.chip = svc::CompileRequest::ofDesc(desc);
  req.hierarchical = true;  // no window: the full symbol-call mask
  const auto resp = service.viewport(req);
  ASSERT_TRUE(resp.ok) << resp.diags.toString();
  EXPECT_EQ(resp.payload, layout::writeCifHier(*first.chip->top));

  // Symbol calls instead of flattened copies: smaller than the same
  // artwork streamed through the windowed (flattening) path. (The plain
  // whole-artwork viewport is already the hierarchical writer, so the
  // flat reference must force the windowed walk.)
  svc::ViewportRequest flatReq;
  flatReq.chip = svc::CompileRequest::ofDesc(desc);
  flatReq.window = first.chip->flatTop().bbox();
  const auto flatResp = service.viewport(flatReq);
  ASSERT_TRUE(flatResp.ok);
  EXPECT_LT(resp.payload.size(), flatResp.payload.size());
}

}  // namespace
}  // namespace bb
