/// Tests for the staged pipeline API: stage ordering and individual
/// runnability, observer invocations, error propagation when a stage
/// fails, the fluent options builder, the emitter registry round-trip,
/// and the concurrent BatchCompiler.

#include "core/batch.hpp"
#include "core/samples.hpp"
#include "core/session.hpp"
#include "icl/parser.hpp"
#include "reps/emitter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace bb {
namespace {

/// Records every observer callback in order.
class RecordingObserver : public core::PassObserver {
 public:
  void onStageBegin(core::Stage s, const core::CompileSession&) override {
    begins.push_back(s);
  }
  void onStageEnd(core::Stage s, const core::CompileSession&, bool ok,
                  std::chrono::nanoseconds) override {
    ends.push_back(s);
    results.push_back(ok);
  }

  std::vector<core::Stage> begins, ends;
  std::vector<bool> results;
};

TEST(Session, StagesRunInOrderOneAtATime) {
  core::CompileSession session(core::samples::smallChip(4));
  for (const core::Stage s : core::kAllStages) {
    EXPECT_FALSE(session.finished());
    EXPECT_EQ(session.nextStage(), s);
    ASSERT_TRUE(session.runNext()) << "stage " << stageName(s) << ": "
                                   << session.diagnostics().toString();
  }
  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.failed());
  auto chip = session.takeChip();
  ASSERT_NE(chip, nullptr);
  EXPECT_GT(chip->stats.dieArea, 0);
  // Once finished, there is nothing more to run.
  EXPECT_FALSE(session.runNext());
  // And run() after the chip was surrendered must not claim success
  // with a null value.
  auto rerun = session.run();
  EXPECT_FALSE(rerun.hasValue());
  EXPECT_TRUE(rerun.diagnostics().hasErrors());
}

TEST(Session, ValueOrWorksForMoveOnlyResults) {
  auto good = core::compileChip(core::samples::smallChip(4)).valueOr(nullptr);
  ASSERT_NE(good, nullptr);
  EXPECT_GT(good->stats.dieArea, 0);
  auto bad = core::compileChip("chip broken; data width 8;").valueOr(nullptr);
  EXPECT_EQ(bad, nullptr);
}

TEST(Session, StopAfterPass1AndInspectPlacement) {
  core::CompileSession session(core::samples::smallChip(4));
  ASSERT_TRUE(session.runTo(core::Stage::Pass1)) << session.diagnostics().toString();
  EXPECT_EQ(session.nextStage(), core::Stage::Pass2);
  EXPECT_FALSE(session.finished());

  // The parse and vote results are inspectable...
  ASSERT_NE(session.description(), nullptr);
  EXPECT_EQ(session.description()->name, "small");
  EXPECT_FALSE(session.assembledElements().empty());

  // ...and the partial chip has a placed core but no control or pads yet.
  const core::CompiledChip* chip = session.chip();
  ASSERT_NE(chip, nullptr);
  EXPECT_NE(chip->core, nullptr);
  EXPECT_EQ(chip->placed.size(), 5u + 1u);  // 5 elements + head precharge
  EXPECT_EQ(chip->decoder, nullptr);
  EXPECT_TRUE(chip->pads.empty());

  // takeChip refuses to hand over an unfinished chip.
  EXPECT_EQ(session.takeChip(), nullptr);

  // The rest of the pipeline still completes from here.
  auto result = session.run();
  ASSERT_TRUE(result) << result.diagnostics().toString();
  EXPECT_NE((*result)->decoder, nullptr);
  EXPECT_FALSE((*result)->pads.empty());
}

TEST(Session, ObserverSeesEveryStageExactlyOnce) {
  core::CompileSession session(core::samples::smallChip(4));
  RecordingObserver rec;
  session.addObserver(&rec);
  ASSERT_TRUE(session.run().hasValue());

  const std::vector<core::Stage> expected(core::kAllStages.begin(),
                                          core::kAllStages.end());
  EXPECT_EQ(rec.begins, expected);
  EXPECT_EQ(rec.ends, expected);
  EXPECT_EQ(rec.results, std::vector<bool>(core::kAllStages.size(), true));
}

TEST(Session, ParseFailureStopsThePipeline) {
  core::CompileSession session("chip broken; data width 8;");
  RecordingObserver rec;
  session.addObserver(&rec);

  EXPECT_FALSE(session.runNext());
  EXPECT_TRUE(session.failed());
  EXPECT_TRUE(session.diagnostics().hasErrors());

  // Only the parse stage ran, and it reported failure.
  EXPECT_EQ(rec.ends, std::vector<core::Stage>{core::Stage::Parse});
  EXPECT_EQ(rec.results, std::vector<bool>{false});

  // A failed session refuses to run further stages.
  EXPECT_FALSE(session.runNext());
  EXPECT_FALSE(session.runTo(core::Stage::Finalize));
  EXPECT_EQ(rec.ends.size(), 1u);
  EXPECT_EQ(session.takeChip(), nullptr);
}

TEST(Session, MidPipelineFailurePropagatesThroughRun) {
  // An unknown conditional-assembly variable is diagnosed by the vote
  // stage — parse succeeds, vote fails, pass1..finalize never run.
  const std::string src = R"(chip bad;
microcode width 4 { field op [0:3]; }
data width 4;
buses A;
core {
  inport IN (bus = A, drive = "op==1");
  if UNDEFINED_VAR { probe P (bus = A, bit = 0); }
  outport OUT (bus = A, sample = "op==2");
}
)";
  core::CompileSession session(src);
  RecordingObserver rec;
  session.addObserver(&rec);

  auto result = session.run();
  EXPECT_FALSE(result.hasValue());
  EXPECT_TRUE(result.diagnostics().hasErrors());
  const std::vector<core::Stage> expected{core::Stage::Parse, core::Stage::Vote};
  EXPECT_EQ(rec.ends, expected);
  EXPECT_EQ(rec.results, (std::vector<bool>{true, false}));
}

TEST(Session, FromParsedDescription) {
  icl::DiagnosticList diags;
  auto desc = icl::parseChip(core::samples::smallChipSource(4), diags);
  ASSERT_TRUE(desc.has_value()) << diags.toString();

  core::CompileSession session(*desc);
  auto result = session.run();
  ASSERT_TRUE(result) << result.diagnostics().toString();
  EXPECT_EQ((*result)->desc.name, "small");
}

TEST(Session, OptionsBuilderSetsEveryKnob) {
  const core::CompileOptions opts = core::CompileOptions::builder()
                                        .var("PROTOTYPE", false)
                                        .railCapacityUaPerLambda(500.0)
                                        .optimizeDecoder(false)
                                        .rotoRouter(false)
                                        .evenSpacing(false)
                                        .ringGapLambda(64)
                                        .build();
  EXPECT_EQ(opts.vars.at("PROTOTYPE"), false);
  EXPECT_DOUBLE_EQ(opts.pass1.railCapacityUaPerLambda, 500.0);
  EXPECT_FALSE(opts.pass2.optimizeDecoder);
  EXPECT_FALSE(opts.pass3.rotoRouter);
  EXPECT_FALSE(opts.pass3.evenSpacing);
  EXPECT_EQ(opts.pass3.ringGapLambda, 64);

  // Builder-made options drive the pipeline like hand-made ones.
  auto result = core::compileChip(
      core::samples::prototypeChip(),
      core::CompileOptions::builder().var("PROTOTYPE", false));
  ASSERT_TRUE(result) << result.diagnostics().toString();
  auto proto = core::compileChip(core::samples::prototypeChip());
  ASSERT_TRUE(proto) << proto.diagnostics().toString();
  EXPECT_EQ((*proto)->stats.padCount, (*result)->stats.padCount + 2);
}

TEST(Emitters, RegistryHasTheFiveUnifiedPaths) {
  const reps::EmitterRegistry& reg = reps::EmitterRegistry::global();
  for (const char* name : {"cif", "gds", "svg", "spice", "text"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  // ...and every other seed output path is reachable too.
  for (const char* name : {"sticks", "sticks-svg", "transistors", "block", "logic",
                           "simulation"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("no-such-backend"), nullptr);
}

TEST(Emitters, EveryRegisteredEmitterProducesOutput) {
  auto result = core::compileChip(core::samples::smallChip(4));
  ASSERT_TRUE(result) << result.diagnostics().toString();
  const core::CompiledChip& chip = **result;

  const reps::EmitterRegistry& reg = reps::EmitterRegistry::global();
  ASSERT_GE(reg.size(), 5u);
  for (const std::string_view name : reg.names()) {
    const reps::Emitter* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_EQ(e->name(), name);
    EXPECT_FALSE(e->fileExtension().empty()) << name;
    EXPECT_FALSE(e->description().empty()) << name;

    std::ostringstream os;
    e->emit(chip, os);
    EXPECT_FALSE(os.str().empty()) << "emitter '" << name << "' wrote nothing";
  }
}

TEST(Emitters, EmitByNameAndShadowing) {
  auto result = core::compileChip(core::samples::smallChip(4));
  ASSERT_TRUE(result) << result.diagnostics().toString();

  std::ostringstream os;
  ASSERT_TRUE(reps::EmitterRegistry::global().emit(**result, "cif", os));
  EXPECT_NE(os.str().find("E"), std::string::npos);
  std::ostringstream bad;
  EXPECT_FALSE(reps::EmitterRegistry::global().emit(**result, "nope", bad));

  // A fresh registry can be built and extended without touching the
  // global one; a same-name registration shadows the built-in.
  class NullEmitter final : public reps::Emitter {
   public:
    [[nodiscard]] std::string_view name() const noexcept override { return "cif"; }
    [[nodiscard]] std::string_view fileExtension() const noexcept override { return "nul"; }
    [[nodiscard]] std::string_view description() const noexcept override {
      return "test stand-in";
    }
    void emit(const core::CompiledChip&, std::ostream& out) const override {
      out << "(null)";
    }
  };
  reps::EmitterRegistry local;
  reps::registerBuiltinEmitters(local);
  const std::size_t builtins = local.size();
  local.add(std::make_unique<NullEmitter>());
  EXPECT_EQ(local.size(), builtins + 1);
  ASSERT_NE(local.find("cif"), nullptr);
  EXPECT_EQ(local.find("cif")->fileExtension(), "nul");
  // names() reports unique names even with the shadowed entry.
  const auto names = local.names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "cif"), 1);
}

TEST(Batch, CompilesManyChipsConcurrently) {
  std::vector<icl::ChipDesc> descs;
  for (int width : {2, 4, 8}) {
    descs.push_back(core::samples::smallChip(width));
    descs.push_back(core::samples::segmentedChip(width));
  }
  const std::size_t jobCount = descs.size();

  const core::BatchCompiler batch({}, 4);
  EXPECT_EQ(batch.threads(), 4u);
  const std::vector<core::BatchResult> results = batch.compileAll(std::move(descs));
  ASSERT_EQ(results.size(), jobCount);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].diags.toString();
    EXPECT_GT(results[i].chip->stats.dieArea, 0) << i;
    EXPECT_GT(results[i].elapsed.count(), 0) << i;
  }
  // Results come back in job order.
  EXPECT_EQ(results[0].name, "small");
  EXPECT_EQ(results[1].name, "segmented");

  // Concurrent compiles match a sequential reference, which itself
  // matches the string frontend over the same description.
  auto ref = core::compileChip(core::samples::smallChip(2));
  ASSERT_TRUE(ref);
  EXPECT_EQ(results[0].chip->stats.dieArea, (*ref)->stats.dieArea);
  auto refText = core::compileChip(core::samples::smallChipSource(2));
  ASSERT_TRUE(refText);
  EXPECT_EQ(results[0].chip->stats.dieArea, (*refText)->stats.dieArea);
}

TEST(Batch, FailedJobCarriesDiagnosticsWithoutAbortingTheBatch) {
  std::vector<core::BatchJob> jobs;
  jobs.push_back({"good", core::samples::smallChip(4), {}});
  jobs.push_back({"bad", "chip broken; data width 8;", {}});
  jobs.push_back({"also-good", core::samples::segmentedChip(4), {}});

  const core::BatchCompiler batch({}, 2);
  const auto results = batch.compileAll(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[1].diags.hasErrors());
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(results[1].name, "bad");
}

TEST(Batch, PerJobOptionsApply) {
  std::vector<core::BatchJob> jobs;
  jobs.push_back({"proto", core::samples::prototypeChip(), {}});
  jobs.push_back({"prod", core::samples::prototypeChip(),
                  core::CompileOptions::builder().var("PROTOTYPE", false).build()});
  const auto results = core::BatchCompiler({}, 2).compileAll(std::move(jobs));
  ASSERT_TRUE(results[0].ok() && results[1].ok());
  EXPECT_EQ(results[0].chip->stats.padCount, results[1].chip->stats.padCount + 2);
}

}  // namespace
}  // namespace bb
