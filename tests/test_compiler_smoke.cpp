/// End-to-end smoke tests: the whole three-pass compiler on the sample
/// chips, checking the invariants the paper promises.

#include "core/samples.hpp"
#include "core/session.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

std::unique_ptr<core::CompiledChip> compileOrDie(icl::ChipDesc desc,
                                                 core::CompileOptions opts = {}) {
  auto result = core::compileChip(std::move(desc), std::move(opts));
  EXPECT_TRUE(result.hasValue()) << result.diagnostics().toString();
  return result ? std::move(*result) : nullptr;
}

TEST(CompilerSmoke, SmallChipCompiles) {
  auto chip = compileOrDie(core::samples::smallChip());
  ASSERT_NE(chip, nullptr);
  EXPECT_NE(chip->top, nullptr);
  EXPECT_NE(chip->core, nullptr);
  EXPECT_NE(chip->decoder, nullptr);
  EXPECT_EQ(chip->placed.size(), 5u + 1u);  // 5 elements + head precharge
  EXPECT_GT(chip->stats.dieArea, 0);
  EXPECT_GT(chip->stats.padCount, 0u);
  EXPECT_GT(chip->logic.gates().size(), 0u);
}

TEST(CompilerSmoke, LargeChipCompiles) {
  auto chip = compileOrDie(core::samples::largeChip());
  ASSERT_NE(chip, nullptr);
  EXPECT_GT(chip->stats.coreArea, 0);
  EXPECT_GT(chip->pla.termCount(), 0u);
  // 16 data pads x2 + 16 microcode + clocks + supplies.
  EXPECT_GE(chip->stats.padCount, 16u + 16u + 16u + 2u + 2u);
}

TEST(CompilerSmoke, CommonPitchIsWidestNatural) {
  auto chip = compileOrDie(core::samples::smallChip());
  ASSERT_NE(chip, nullptr);
  // Every placed column has the same height: dataWidth * pitch.
  for (const core::PlacedElement& pe : chip->placed) {
    EXPECT_EQ(pe.column->height(), chip->stats.pitch * chip->desc.dataWidth)
        << pe.name << " not stretched to the common pitch";
  }
  // The ALU is the widest element; the pitch must be at least its natural.
  EXPECT_GE(chip->stats.pitch, chip->stats.naturalPitchMax);
}

TEST(CompilerSmoke, DecoderMatchesDecodeFunctions) {
  auto chip = compileOrDie(core::samples::smallChip());
  ASSERT_NE(chip, nullptr);
  // The optimized PLA must evaluate exactly as each decode expression.
  for (std::size_t i = 0; i < chip->controls.size(); ++i) {
    icl::DiagnosticList diags;
    const icl::SumOfProducts ref =
        icl::compileDecode(chip->controls[i].decode, chip->desc.microcode, diags);
    ASSERT_FALSE(diags.hasErrors());
    for (unsigned long long w = 0; w < (1ull << chip->desc.microcode.width); ++w) {
      ASSERT_EQ(chip->pla.eval(static_cast<int>(i), w), ref.matches(w))
          << "control " << chip->controls[i].name << " word " << w;
    }
  }
}

TEST(CompilerSmoke, ConditionalAssemblyAddsAndRemovesProbes) {
  auto proto = compileOrDie(core::samples::prototypeChip());
  core::CompileOptions prodOpts;
  prodOpts.vars["PROTOTYPE"] = false;
  auto prod = compileOrDie(core::samples::prototypeChip(), prodOpts);
  ASSERT_NE(proto, nullptr);
  ASSERT_NE(prod, nullptr);
  EXPECT_EQ(proto->stats.padCount, prod->stats.padCount + 2);
  EXPECT_GT(proto->stats.dieArea, prod->stats.dieArea);
}

TEST(CompilerSmoke, BusStopSplitsSegmentsAndAddsPrecharge) {
  auto chip = compileOrDie(core::samples::segmentedChip());
  ASSERT_NE(chip, nullptr);
  EXPECT_EQ(chip->stats.busSegments[1], 2u);
  EXPECT_EQ(chip->stats.prechargeColumns, 2u);  // head + post-stop
  // Logic has both segment prefixes.
  EXPECT_GE(chip->logic.findSignal("busB0"), 0);
  EXPECT_GE(chip->logic.findSignal("busB#20"), 0);
}

TEST(CompilerSmoke, BadInputDiagnosedNotCrash) {
  auto result = core::compileChip("chip broken; data width 8;");
  EXPECT_FALSE(result.hasValue());
  EXPECT_TRUE(result.diagnostics().hasErrors());
}

// The two frontends must agree: a builder-made description and its
// rendered ICL source have to produce the same chip.
TEST(CompilerSmoke, TypedAndTextFrontendsProduceTheSameChip) {
  auto viaText = core::compileChip(core::samples::smallChipSource());
  ASSERT_TRUE(viaText.hasValue()) << viaText.diagnostics().toString();

  auto viaDesc = compileOrDie(core::samples::smallChip());
  ASSERT_NE(viaDesc, nullptr);
  EXPECT_EQ((*viaText)->stats.dieArea, viaDesc->stats.dieArea);
  EXPECT_EQ((*viaText)->stats.padCount, viaDesc->stats.padCount);
  EXPECT_EQ((*viaText)->stats.shapeCount, viaDesc->stats.shapeCount);
}

}  // namespace
}  // namespace bb
