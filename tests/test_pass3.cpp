/// Pass 3 tests: clockwise collection, Roto-Router optimality properties,
/// even spacing, and wiring bookkeeping.

#include "baseline/naive_pads.hpp"
#include "core/session.hpp"
#include "core/samples.hpp"

#include <gtest/gtest.h>

#include <map>

namespace bb {
namespace {

std::unique_ptr<core::CompiledChip> compileSmall(core::CompileOptions opts = {}) {
  auto result = core::compileChip(core::samples::smallChip(8), std::move(opts));
  EXPECT_TRUE(result) << result.diagnostics().toString();
  return result ? std::move(*result) : nullptr;
}

TEST(Pass3, EveryRequestGetsExactlyOnePad) {
  auto chip = compileSmall();
  ASSERT_NE(chip, nullptr);
  std::map<std::string, int> seen;
  for (const core::PadPlacement& p : chip->pads) ++seen[p.name];
  for (const auto& [name, n] : seen) {
    EXPECT_EQ(n, 1) << name;
  }
  // 8 in + 8 out + 8 microcode + 2 clocks + vdd + gnd.
  EXPECT_EQ(chip->pads.size(), 8u + 8u + 8u + 2u + 2u);
}

TEST(Pass3, SupplyAndClockPadsPresent) {
  auto chip = compileSmall();
  ASSERT_NE(chip, nullptr);
  std::map<std::string, int> byCell;
  for (const core::PadPlacement& p : chip->pads) ++byCell[p.padCellName];
  EXPECT_EQ(byCell["pad_vdd"], 1);
  EXPECT_EQ(byCell["pad_gnd"], 1);
  EXPECT_EQ(byCell["pad_clock"], 2);
  EXPECT_GE(byCell["pad_in"], 8 + 8);  // data-in + microcode
  EXPECT_GE(byCell["pad_out"], 8);
}

TEST(Pass3, RotoRouterNoWorseThanNaive) {
  core::CompileOptions with;
  auto chip = compileSmall(with);
  ASSERT_NE(chip, nullptr);
  core::CompileOptions without;
  without.pass3.rotoRouter = false;
  auto naive = compileSmall(without);
  ASSERT_NE(naive, nullptr);
  EXPECT_LE(chip->stats.padWireLength, naive->stats.padWireLength);
}

TEST(Pass3, RotationIsOptimalAmongRotations) {
  auto chip = compileSmall();
  ASSERT_NE(chip, nullptr);
  const baseline::PadStrategyReport rep = baseline::comparePadStrategies(*chip);
  EXPECT_LE(rep.rotoRouter, rep.naive);
  EXPECT_GT(rep.rotoRouter, 0);
}

TEST(Pass3, EvenSpacingSpreadsPads) {
  auto chip = compileSmall();
  ASSERT_NE(chip, nullptr);
  // With even spacing and a clockwise walk, consecutive pad pins should
  // never collapse onto each other.
  for (std::size_t i = 0; i < chip->pads.size(); ++i) {
    for (std::size_t j = i + 1; j < chip->pads.size(); ++j) {
      EXPECT_GT(geom::manhattan(chip->pads[i].pinAt, chip->pads[j].pinAt), 0)
          << chip->pads[i].name << " vs " << chip->pads[j].name;
    }
  }
  // All four sides are used for this pad count.
  std::map<cell::Side, int> sides;
  for (const core::PadPlacement& p : chip->pads) ++sides[p.side];
  EXPECT_EQ(sides.size(), 4u);
}

TEST(Pass3, WireLengthsAccount) {
  auto chip = compileSmall();
  ASSERT_NE(chip, nullptr);
  geom::Coord total = 0;
  for (const core::PadPlacement& p : chip->pads) {
    EXPECT_GE(p.wireLength, geom::manhattan(p.pinAt, p.target));
    total += p.wireLength;
  }
  EXPECT_EQ(total, chip->stats.padWireLength);
}

TEST(Pass3, PadsOutsideTheCoreBlock) {
  auto chip = compileSmall();
  ASSERT_NE(chip, nullptr);
  const geom::Rect block{0, 0, chip->stats.coreWidth,
                         chip->stats.coreHeight};  // at least the core
  for (const core::PadPlacement& p : chip->pads) {
    EXPECT_FALSE(block.contains(p.pinAt)) << p.name << " pin inside the core";
  }
}

}  // namespace
}  // namespace bb
