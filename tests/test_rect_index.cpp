/// Spatial-index engine tests: RectIndex query correctness against brute
/// scans, and end-to-end equivalence — indexed DRC, extraction and
/// connectedComponents must produce bit-identical results to the
/// reference brute-force paths, on random rect soups and on the sample
/// chips' generated cells.

#include "core/samples.hpp"
#include "core/session.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "geom/rect_index.hpp"

#include <gtest/gtest.h>

#include <random>

namespace bb {
namespace {

using geom::Coord;
using geom::Rect;
using geom::RectIndex;
using tech::Layer;

std::vector<Rect> randomRects(std::size_t n, Coord span, Coord maxSide, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Coord> pos(0, span);
  std::uniform_int_distribution<Coord> side(0, maxSide);
  std::vector<Rect> rs;
  rs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    rs.emplace_back(x, y, x + side(rng), y + side(rng));
  }
  return rs;
}

std::vector<int> bruteTouching(const std::vector<Rect>& rs, const Rect& q) {
  std::vector<int> out;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (rs[i].touches(q)) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(RectIndex, EmptyIndexReturnsNothing) {
  const RectIndex idx;
  EXPECT_TRUE(idx.queryTouching(Rect{0, 0, 100, 100}).empty());
  EXPECT_TRUE(idx.queryWithin(Rect{0, 0, 100, 100}, 50).empty());
}

TEST(RectIndex, QueryTouchingMatchesBruteOnRandomSoup) {
  const auto rs = randomRects(800, 4000, 120, 1);
  const RectIndex idx(rs);
  std::mt19937 rng(2);
  std::uniform_int_distribution<Coord> pos(-100, 4200);
  std::uniform_int_distribution<Coord> side(0, 400);
  for (int k = 0; k < 300; ++k) {
    const Coord x = pos(rng), y = pos(rng);
    const Rect q{x, y, x + side(rng), y + side(rng)};
    EXPECT_EQ(idx.queryTouching(q), bruteTouching(rs, q)) << geom::toString(q);
  }
}

TEST(RectIndex, QueryWithinIsTheGapPredicate) {
  const auto rs = randomRects(400, 2000, 80, 3);
  const RectIndex idx(rs);
  const Rect q{500, 500, 700, 650};
  for (const Coord margin : {Coord{0}, Coord{7}, Coord{64}}) {
    // Reference: gap(q, r) <= margin, Chebyshev metric.
    std::vector<int> want;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const Coord dx = std::max({q.x0 - rs[i].x1, rs[i].x0 - q.x1, Coord{0}});
      const Coord dy = std::max({q.y0 - rs[i].y1, rs[i].y0 - q.y1, Coord{0}});
      if (std::max(dx, dy) <= margin) want.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(idx.queryWithin(q, margin), want) << "margin " << margin;
  }
}

TEST(RectIndex, HugeRectAmongTinyOnes) {
  // A die-spanning rail among small features stresses the grid cap.
  auto rs = randomRects(500, 10000, 20, 4);
  rs.emplace_back(0, 4000, 10000, 4012);
  const RectIndex idx(rs);
  const Rect q{5000, 3990, 5040, 4030};
  EXPECT_EQ(idx.queryTouching(q), bruteTouching(rs, q));
}

TEST(Rect, ExpandedXY) {
  const Rect a{0, 0, 10, 4};
  EXPECT_EQ(a.expandedXY(3, 1), (Rect{-3, -1, 13, 5}));
  EXPECT_EQ(a.expandedXY(0, 0), a);
  // Over-shrinking an axis collapses it to the midline, like expanded().
  const Rect s = a.expandedXY(-1, -3);
  EXPECT_EQ(s, (Rect{1, 2, 9, 2}));
  EXPECT_TRUE(s.isEmpty());
}

TEST(ConnectedComponents, IndexedMatchesBruteBitIdentical) {
  for (const unsigned seed : {10u, 11u, 12u}) {
    // Clustered sizes around the 32-rect brute cutoff and well above it.
    for (const std::size_t n : {20u, 33u, 500u, 2000u}) {
      const auto rs = randomRects(n, static_cast<Coord>(n * 6), 30, seed);
      const auto fast = geom::connectedComponents(rs);
      const auto ref = geom::connectedComponentsBrute(rs);
      EXPECT_EQ(fast.count, ref.count) << "n=" << n << " seed=" << seed;
      EXPECT_EQ(fast.componentOf, ref.componentOf) << "n=" << n << " seed=" << seed;
    }
  }
}

// --- DRC equivalence ----------------------------------------------------

bool sameViolations(const std::vector<drc::Violation>& a,
                    const std::vector<drc::Violation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rule != b[i].rule || a[i].layerA != b[i].layerA || a[i].layerB != b[i].layerB ||
        a[i].where != b[i].where || a[i].message != b[i].message) {
      return false;
    }
  }
  return true;
}

/// Indexed, brute and parallel-indexed DRC over the same artwork must
/// agree violation-for-violation, in order.
void expectDrcEquivalent(const cell::FlatLayout& flat, const geom::Rect& boundary) {
  drc::DrcOptions brute;
  brute.useSpatialIndex = false;
  brute.boundaryConditions = false;
  drc::DrcOptions indexed = brute;
  indexed.useSpatialIndex = true;
  drc::DrcOptions parallel = indexed;
  parallel.threads = 4;

  const auto deck = tech::meadConwayRules();
  const auto repB = drc::checkFlat(flat, boundary, deck, brute);
  const auto repI = drc::checkFlat(flat, boundary, deck, indexed);
  const auto repP = drc::checkFlat(flat, boundary, deck, parallel);
  EXPECT_TRUE(sameViolations(repB.violations, repI.violations))
      << "brute " << repB.summary() << "\nindexed " << repI.summary();
  EXPECT_TRUE(sameViolations(repB.violations, repP.violations))
      << "brute " << repB.summary() << "\nparallel " << repP.summary();
}

TEST(DrcEquivalence, RandomLayerSoup) {
  // Dirty-by-construction artwork: random rects on the conducting layers
  // produce plenty of width, spacing, gate and contact violations.
  std::mt19937 rng(42);
  std::uniform_int_distribution<Coord> pos(0, geom::lambda(300));
  std::uniform_int_distribution<Coord> side(1, geom::lambda(6));
  cell::FlatLayout flat;
  const Layer layers[] = {Layer::Metal, Layer::Poly, Layer::Diffusion, Layer::Contact,
                          Layer::Buried};
  for (const Layer l : layers) {
    for (int i = 0; i < 220; ++i) {
      const Coord x = pos(rng), y = pos(rng);
      flat.on(l).emplace_back(x, y, x + side(rng), y + side(rng));
    }
  }
  expectDrcEquivalent(flat, flat.bbox());
}

TEST(DrcEquivalence, SampleChipCells) {
  for (const icl::ChipDesc& desc :
       {core::samples::smallChip(4), core::samples::segmentedChip(4),
        core::samples::prototypeChip()}) {
    auto compiled = core::compileChip(desc);
    ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
    for (const cell::Cell* c : (*compiled)->lib.all()) {
      expectDrcEquivalent(cell::flatten(*c), c->boundary());
    }
  }
}

// --- extraction equivalence ---------------------------------------------

void expectExtractEquivalent(const cell::Cell& c) {
  extract::ExtractOptions brute;
  brute.useSpatialIndex = false;
  extract::ExtractOptions indexed;
  indexed.useSpatialIndex = true;

  const auto exB = extract::extractCell(c, brute);
  const auto exI = extract::extractCell(c, indexed);
  EXPECT_EQ(exB.netCount, exI.netCount) << c.name();
  EXPECT_EQ(exB.unresolvedGates, exI.unresolvedGates) << c.name();
  // toText covers device kinds, W/L, positions and net naming; equality
  // here is the bit-identical netlist the acceptance criteria ask for.
  EXPECT_EQ(exB.netlist.toText(), exI.netlist.toText()) << c.name();
}

TEST(ExtractEquivalence, SampleChipCells) {
  for (const icl::ChipDesc& desc :
       {core::samples::smallChip(4), core::samples::segmentedChip(4)}) {
    auto compiled = core::compileChip(desc);
    ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
    for (const cell::Cell* c : (*compiled)->lib.all()) {
      expectExtractEquivalent(*c);
    }
  }
}

TEST(ExtractEquivalence, SampleChipCore) {
  auto compiled = core::compileChip(core::samples::smallChip(8));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  expectExtractEquivalent(*(*compiled)->core);
}

// --- FlatLayout index cache ---------------------------------------------

TEST(FlatLayoutIndex, CachedAndInvalidatedOnMutation) {
  cell::FlatLayout flat;
  flat.on(Layer::Metal).emplace_back(0, 0, 10, 10);
  const RectIndex* first = &flat.indexOn(Layer::Metal);
  EXPECT_EQ(first, &flat.indexOn(Layer::Metal));  // cached
  EXPECT_EQ(first->size(), 1u);

  flat.on(Layer::Metal).emplace_back(100, 100, 120, 120);  // invalidates
  const RectIndex& rebuilt = flat.indexOn(Layer::Metal);
  EXPECT_EQ(rebuilt.size(), 2u);
  EXPECT_EQ(rebuilt.queryTouching(Rect{99, 99, 101, 101}), (std::vector<int>{1}));
}

}  // namespace
}  // namespace bb
