/// The hierarchical-compile layer: cell::HierIndex decomposition,
/// checkHier/extractHier equivalence against the flat oracles (clean and
/// violation-seeded arrays), SREF/AREF mask emission with CIF/GDS
/// round-trips, and the lazy-resolution layout::View constructor with
/// its instance-materialization counter.

#include "cell/hier_index.hpp"
#include "cell/library.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "geom/sweep.hpp"
#include "layout/cif.hpp"
#include "layout/cif_parser.hpp"
#include "layout/gds.hpp"
#include "layout/view.hpp"
#include "tech/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace bb {
namespace {

using cell::CellLibrary;
using cell::FlatLayout;
using cell::HierIndex;
using geom::Coord;
using geom::lambda;
using geom::Rect;
using tech::Layer;

/// The bench leaf shrunk into a fixture: a 20L x 20L DRC-clean tile with
/// one enhancement transistor (poly strip over a diffusion strip), a
/// metal/poly contact, and a full-width metal strip so horizontally
/// abutted instances share a net.
cell::Cell* makeLeaf(CellLibrary& lib) {
  cell::Cell* leaf = lib.create("hier_leaf");
  leaf->setBoundary(Rect{0, 0, lambda(20), lambda(20)});
  leaf->addRect(Layer::Diffusion, Rect{lambda(8), lambda(2), lambda(10), lambda(18)});
  leaf->addRect(Layer::Poly, Rect{lambda(2), lambda(9), lambda(18), lambda(11)});
  leaf->addRect(Layer::Poly, Rect{lambda(3), lambda(8), lambda(7), lambda(12)});
  leaf->addRect(Layer::Metal, Rect{lambda(3), lambda(8), lambda(7), lambda(12)});
  leaf->addRect(Layer::Contact, Rect{lambda(4), lambda(9), lambda(6), lambda(11)});
  leaf->addRect(Layer::Metal, Rect{0, lambda(15), lambda(20), lambda(18)});
  return leaf;
}

/// n x n array of `leaf` at its own pitch (instances abut exactly).
cell::Cell* makeArray(CellLibrary& lib, cell::Cell* leaf, int n,
                      const char* name = "hier_array") {
  cell::Cell* top = lib.create(name);
  const Coord pitch = lambda(20);
  top->setBoundary(Rect{0, 0, pitch * n, pitch * n});
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      top->addInstance(leaf, geom::Transform::translate({pitch * i, pitch * j}));
    }
  }
  return top;
}

/// Order-insensitive violation fingerprint (checkHier documents a
/// different violation order than the flat scan).
std::multiset<std::string> violationSet(const drc::DrcReport& rep) {
  std::multiset<std::string> out;
  for (const drc::Violation& v : rep.violations) {
    out.insert(v.rule + " " + geom::toString(v.where));
  }
  return out;
}

std::vector<Rect> sortedRects(std::vector<Rect> rs) {
  std::sort(rs.begin(), rs.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
  });
  return rs;
}

// -------------------------------------------------------- decomposition

TEST(HierIndex, ArrayDecomposesIntoOneUnitAndNPlacements) {
  CellLibrary lib;
  cell::Cell* leaf = makeLeaf(lib);
  cell::Cell* top = makeArray(lib, leaf, 3);
  const HierIndex hier{*top};

  ASSERT_EQ(hier.units().size(), 1u);
  EXPECT_EQ(hier.units()[0].cell, leaf);
  EXPECT_EQ(hier.units()[0].placementCount, 9u);
  EXPECT_EQ(hier.placements().size(), 9u);
  EXPECT_EQ(hier.residual().totalCount(), 0u);

  const std::size_t leafCount = hier.units()[0].flat.totalCount();
  EXPECT_EQ(leafCount, 6u);
  EXPECT_EQ(hier.flatCount(), 9u * leafCount);
  EXPECT_EQ(hier.uniqueCount(), leafCount);
  EXPECT_EQ(hier.flatCount(), cell::flatten(*top).totalCount());
  // Geometry bbox (union of placed unit bboxes), not the cell boundary.
  EXPECT_EQ(hier.bbox(), cell::flatten(*top).bbox());

  // Every placement maps the unit bbox onto its world bbox.
  for (const cell::HierPlacement& p : hier.placements()) {
    EXPECT_EQ(p.unit, 0u);
    EXPECT_EQ(p.worldBBox, p.t(hier.units()[0].bbox));
  }
}

TEST(HierIndex, TinyRepeatedCellsFallIntoTheResidual) {
  CellLibrary lib;
  cell::Cell* dot = lib.create("dot");
  dot->addRect(Layer::Metal, Rect{0, 0, lambda(4), lambda(4)});
  cell::Cell* top = lib.create("top");
  for (int i = 0; i < 4; ++i) {
    top->addInstance(dot, geom::Transform::translate({lambda(8) * i, 0}));
  }
  // One shape < minUnitShapes=2: cheaper re-flattened than indexed.
  const HierIndex hier{*top};
  EXPECT_TRUE(hier.units().empty());
  EXPECT_TRUE(hier.placements().empty());
  EXPECT_EQ(hier.residual().totalCount(), 4u);
  EXPECT_EQ(hier.flatCount(), 4u);
  EXPECT_EQ(hier.uniqueCount(), 4u);
}

TEST(HierIndex, SingleOccurrenceGeometryStaysResidual) {
  CellLibrary lib;
  cell::Cell* leaf = makeLeaf(lib);
  cell::Cell* top = makeArray(lib, leaf, 2);
  // Top-level wiring of its own: must land in the residual, not a unit.
  top->addRect(Layer::Metal, Rect{0, lambda(40), lambda(40), lambda(43)});
  const HierIndex hier{*top};
  ASSERT_EQ(hier.units().size(), 1u);
  EXPECT_EQ(hier.residual().totalCount(), 1u);
  EXPECT_EQ(hier.flatCount(), 4u * 6u + 1u);
}

TEST(HierIndex, ForEachPlacementNearSelectsByWorldBBox) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 4);
  const HierIndex hier{*top};
  // Strictly inside instance (0,0): exactly one placement is near.
  std::vector<std::size_t> hits;
  hier.forEachPlacementNear(Rect{lambda(2), lambda(2), lambda(18), lambda(18)}, 0,
                            [&](std::size_t pi) { hits.push_back(pi); });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hier.placements()[hits[0]].worldBBox.x0, 0);

  // Whole bbox: all 16, ascending.
  hits.clear();
  hier.forEachPlacementNear(hier.bbox(), 0, [&](std::size_t pi) { hits.push_back(pi); });
  EXPECT_EQ(hits.size(), 16u);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
}

// ------------------------------------------------- DRC equivalence

TEST(HierDrc, CleanArrayStaysCleanUnderBothCheckers) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 4);
  const tech::RuleDeck deck = tech::meadConwayRules();
  const drc::DeckChecker checker{deck};

  const drc::DrcReport flat = checker.check(cell::flatten(*top), top->boundary());
  const drc::DrcReport hier = checker.checkHier(HierIndex{*top});
  EXPECT_TRUE(flat.clean()) << flat.summary();
  EXPECT_TRUE(hier.clean()) << hier.summary();
}

TEST(HierDrc, SeededCrossInstanceViolationsMatchTheFlatOracle) {
  // Two full-width metal bars near the cell's bottom and top edge: each
  // cell is clean in isolation (12L internal gap), but vertically
  // stacked instances put bar B 2L away from the neighbour's bar A —
  // under the 3L metal spacing rule. Every violation is cross-instance,
  // so this exercises exactly the interaction-region machinery.
  CellLibrary lib;
  cell::Cell* leaf = lib.create("viol_leaf");
  leaf->setBoundary(Rect{0, 0, lambda(20), lambda(20)});
  leaf->addRect(Layer::Metal, Rect{lambda(2), 0, lambda(18), lambda(3)});
  leaf->addRect(Layer::Metal, Rect{lambda(2), lambda(15), lambda(18), lambda(18)});
  cell::Cell* top = makeArray(lib, leaf, 3, "viol_array");

  const tech::RuleDeck deck = tech::meadConwayRules();
  const drc::DeckChecker checker{deck};
  const drc::DrcReport flat = checker.check(cell::flatten(*top), top->boundary());
  const drc::DrcReport hier = checker.checkHier(HierIndex{*top});

  // 3 columns x 2 row-gaps, one spacing violation per gap.
  EXPECT_EQ(flat.violations.size(), 6u) << flat.summary();
  EXPECT_EQ(violationSet(hier), violationSet(flat));
}

// --------------------------------------------- extraction equivalence

TEST(HierExtract, ArrayNetlistMatchesFlatExtraction) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 3);
  extract::ExtractOptions opts;
  const std::vector<extract::NetLabel> labels = {
      {"row0", Layer::Metal, {lambda(10), lambda(16)}}};

  const extract::ExtractResult flat = extract::extractFlat(cell::flatten(*top), labels, opts);
  const extract::ExtractResult hier = extract::extractHier(HierIndex{*top}, labels, opts);

  std::string why;
  EXPECT_TRUE(extract::netlistsEquivalent(flat, hier, &why)) << why;
  // One transistor per instance; the label resolved onto a real net.
  EXPECT_EQ(hier.netlist.transistors().size(), 9u);
  ASSERT_EQ(hier.labelBindings.size(), 1u);
  EXPECT_NE(hier.labelBindings[0].net, -1);
  // Abutted metal strips merge across instances: the labelled row net
  // exists once, not three times (9 strips over 3 rows).
  EXPECT_EQ(flat.netCount, hier.netCount);
}

TEST(HierExtract, ExtractCellRoutesThroughHierWhenAsked) {
  // The ExtractOptions::hierarchical flag: same entry point, same
  // circuit, work done by the hier path.
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 3);
  extract::ExtractOptions flatOpts;
  extract::ExtractOptions hierOpts;
  hierOpts.hierarchical = true;
  const extract::ExtractResult flat = extract::extractCell(*top, flatOpts);
  const extract::ExtractResult hier = extract::extractCell(*top, hierOpts);
  std::string why;
  EXPECT_TRUE(extract::netlistsEquivalent(flat, hier, &why)) << why;
}

// ------------------------------------------------- hierarchical masks

TEST(HierMask, UniformArrayEmitsOneArefAndRoundTrips) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 3);

  const std::vector<std::uint8_t> gds = layout::writeGdsHier(*top);
  const layout::GdsStats st = layout::gdsStats(gds);
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.arefs, 1u);
  EXPECT_EQ(st.srefs, 0u);
  EXPECT_EQ(st.structures, 2u);  // leaf + top
  EXPECT_EQ(st.boundaries, 6u);  // leaf interior ONCE, not 9x

  // Hier file is a fraction of the flat one.
  const auto flatGds = layout::writeGds(cell::flatten(*top), layout::ViewOptions{});
  EXPECT_LT(gds.size() * 2, flatGds.size());

  // CIF: symbol calls, parsed back and compared by per-layer mask area.
  const std::string cif = layout::writeCifHier(*top);
  CellLibrary parsed;
  const layout::CifParseResult res = layout::parseCif(cif, parsed);
  ASSERT_TRUE(res.ok) << res.error;
  const FlatLayout back = cell::flatten(*res.top);
  const FlatLayout ref = cell::flatten(*top);
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(geom::sweep::unionArea(back.on(l)), geom::sweep::unionArea(ref.on(l)))
        << tech::layerName(l);
  }
}

TEST(HierMask, NonGridPlacementsFallBackToSrefs) {
  CellLibrary lib;
  cell::Cell* leaf = makeLeaf(lib);
  cell::Cell* top = lib.create("ragged");
  top->addInstance(leaf, geom::Transform::translate({0, 0}));
  top->addInstance(leaf, geom::Transform::translate({lambda(20), 0}));
  top->addInstance(leaf, geom::Transform::translate({lambda(55), lambda(7)}));
  const layout::GdsStats st = layout::gdsStats(layout::writeGdsHier(*top));
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.arefs, 0u);
  EXPECT_EQ(st.srefs, 3u);
}

TEST(HierMask, MixedOrientationsGroupSeparately) {
  CellLibrary lib;
  cell::Cell* leaf = makeLeaf(lib);
  cell::Cell* top = lib.create("mixed");
  // A 2x2 R0 grid plus one mirrored copy: the grid compresses to an
  // AREF, the mirrored instance keeps its own SREF (different strans).
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 2; ++i) {
      top->addInstance(leaf,
                       geom::Transform::translate({lambda(20) * i, lambda(20) * j}));
    }
  }
  top->addInstance(leaf, {geom::Orientation::MX, {lambda(60), lambda(20)}});
  const layout::GdsStats st = layout::gdsStats(layout::writeGdsHier(*top));
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.arefs, 1u);
  EXPECT_EQ(st.srefs, 1u);
}

// ------------------------------------------------ lazy View resolution

TEST(HierView, CornerWindowMaterializesOnlyTouchingInstances) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 4);
  const HierIndex hier{*top};
  ASSERT_EQ(hier.instancesMaterialized(), 0u);

  layout::ViewOptions w;
  w.window = Rect{lambda(2), lambda(2), lambda(18), lambda(18)};
  const layout::View v{hier, w};
  EXPECT_EQ(hier.instancesMaterialized(), 1u);

  // Content check against the flat oracle: exactly the touching rects.
  const FlatLayout flat = cell::flatten(*top);
  for (Layer l : tech::kAllLayers) {
    std::vector<Rect> expect;
    for (const Rect& r : flat.on(l)) {
      if (r.touches(*w.window)) expect.push_back(r);
    }
    EXPECT_EQ(sortedRects(v.rectsOn(l)), sortedRects(expect)) << tech::layerName(l);
  }
}

TEST(HierView, FullWindowMatchesTheFlattenEverywhere) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 4);
  // Residual wiring too, so both sources contribute.
  top->addRect(Layer::Metal, Rect{0, lambda(80), lambda(80), lambda(83)});
  const HierIndex hier{*top};
  const layout::View v{hier};
  EXPECT_EQ(hier.instancesMaterialized(), 16u);

  const FlatLayout flat = cell::flatten(*top);
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(sortedRects(v.rectsOn(l)), sortedRects(flat.on(l))) << tech::layerName(l);
  }

  // The emitted window is a valid mask identical in area to the flat one.
  layout::ViewOptions flatView;
  const std::string hierCif = layout::writeCif(v);
  CellLibrary parsed;
  const layout::CifParseResult res = layout::parseCif(hierCif, parsed);
  ASSERT_TRUE(res.ok) << res.error;
  const FlatLayout back = cell::flatten(*res.top);
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(geom::sweep::unionArea(back.on(l)), geom::sweep::unionArea(flat.on(l)))
        << tech::layerName(l);
  }
}

TEST(HierView, ViewOutlivesTheIndexItWasBuiltFrom) {
  CellLibrary lib;
  cell::Cell* top = makeArray(lib, makeLeaf(lib), 2);
  const FlatLayout flat = cell::flatten(*top);
  std::unique_ptr<layout::View> v;
  {
    const HierIndex hier{*top};
    v = std::make_unique<layout::View>(hier);
  }  // hier destroyed; the View keeps its materialized snapshot alive
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(sortedRects(v->rectsOn(l)), sortedRects(flat.on(l))) << tech::layerName(l);
  }
}

}  // namespace
}  // namespace bb
