/// Full-chip simulation: "software can be written for the chip to explore
/// the feasibility of the design" — we write and run microcode programs
/// against compiled chips and check the architectural results.

#include "core/session.hpp"
#include "core/samples.hpp"
#include "sim/testbench.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

/// Microcode word builder for the small chip (op [0:2], misc [4:7]).
unsigned long long mc(unsigned op, unsigned misc = 0) { return (op & 7u) | (misc << 4); }

constexpr unsigned kLoadRA = 1, kOperands = 3, kStore = 4, kOut = 5;
constexpr unsigned kAluAdd = 0, kAluAnd = 1, kAluOr = 2, kAluPassA = 3;

class SmallChipSim : public ::testing::Test {
 protected:
  void SetUp() override {
    auto compiled = core::compileChip(core::samples::smallChip(8));
    ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
    chip_ = std::move(*compiled);
    sim_ = std::make_unique<sim::Simulator>(chip_->logic);
  }

  /// Drive the input pads with a value (pads are named IN.pad<i>).
  void setInput(unsigned long long v) {
    for (int i = 0; i < 8; ++i) {
      sim_->setBool("pad.IN.pad" + std::to_string(i), (v >> i) & 1);
    }
  }

  unsigned long long readOutput() {
    unsigned long long v = 0;
    for (int i = 0; i < 8; ++i) {
      if (sim_->getBool("pad.OUT.pad" + std::to_string(i))) v |= 1ull << i;
    }
    return v;
  }

  /// Run one ALU operation (a OP b) through the full datapath and return
  /// the value observed on the output pads.
  unsigned long long runOp(unsigned aluOp, unsigned long long a, unsigned long long b) {
    sim::Testbench tb(*sim_, chip_->desc.microcode.width, 8);
    setInput(b);
    tb.run({mc(kLoadRA)});          // RA := b
    setInput(a);
    tb.run({mc(kOperands, aluOp)}); // latch (a, RA); compute in phi2
    tb.run({mc(kStore, aluOp)});    // ACC := result
    tb.run({mc(kOut)});             // pads := ACC
    return readOutput();
  }

  std::unique_ptr<core::CompiledChip> chip_;
  std::unique_ptr<sim::Simulator> sim_;
};

TEST_F(SmallChipSim, AddExecutes) {
  EXPECT_EQ(runOp(kAluAdd, 5, 7), 12u);
}

TEST_F(SmallChipSim, AddWrapsAtWordWidth) {
  EXPECT_EQ(runOp(kAluAdd, 200, 100), (200u + 100u) & 0xffu);
}

TEST_F(SmallChipSim, AndExecutes) {
  EXPECT_EQ(runOp(kAluAnd, 0xcc, 0xaa), 0xccu & 0xaau);
}

TEST_F(SmallChipSim, OrExecutes) {
  EXPECT_EQ(runOp(kAluOr, 0x41, 0x0e), 0x41u | 0x0eu);
}

TEST_F(SmallChipSim, PassAExecutes) {
  EXPECT_EQ(runOp(kAluPassA, 0x5a, 0xff), 0x5au);
}

TEST_F(SmallChipSim, RegisterHoldsAcrossIdleCycles) {
  sim::Testbench tb(*sim_, chip_->desc.microcode.width, 8);
  setInput(0x3c);
  tb.run({mc(kLoadRA)});
  setInput(0);                           // change pads; RA must hold
  tb.run({mc(0), mc(0), mc(0)});         // NOPs
  tb.run({mc(kOperands, kAluAdd)});      // a=pads(0) + b=RA(0x3c)
  tb.run({mc(kStore, kAluAdd), mc(kOut)});
  EXPECT_EQ(readOutput(), 0x3cu);
}

TEST_F(SmallChipSim, BusReadsAllOnesWhenUndriven) {
  // The precharged bus with no driver carries all ones during phi1.
  // Cycle 1 is a warm-up: before the first phi2 the bus has never been
  // precharged and floats at X (exactly as on real silicon at power-on).
  sim::Testbench tb(*sim_, chip_->desc.microcode.width, 8);
  auto trace = tb.run({mc(0), mc(0)});
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].busA, 0xffu);
  EXPECT_EQ(trace[1].busB, 0xffu);
}

TEST_F(SmallChipSim, InputPortDrivesBusDuringPhi1) {
  sim::Testbench tb(*sim_, chip_->desc.microcode.width, 8);
  setInput(0x2d);
  auto trace = tb.run({mc(0), mc(kLoadRA)});  // warm-up NOP precharges
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].busA, 0x2du);
}

TEST_F(SmallChipSim, AccumulateLoop) {
  // ACC := 1+1; then repeatedly ACC := ACC?  The datapath has no ACC->ALU
  // path, so emulate a counting loop through RA: RA:=k, result=k+k.
  for (unsigned k = 1; k <= 5; ++k) {
    EXPECT_EQ(runOp(kAluAdd, k, k), 2 * k) << "k=" << k;
  }
}

TEST(ChipSimSegmented, SegmentsAreElectricallySeparate) {
  auto compiled = core::compileChip(core::samples::segmentedChip(8));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  auto chip = std::move(*compiled);
  sim::Simulator sim(chip->logic);
  // Drive input pads, execute op==1 (IN drives segment-1 of A)... then
  // check that the two B segments resolve independently: write R0 via
  // op==2, read it on segment 1 of B with op==3 while segment 2 stays
  // precharged-high.
  for (int i = 0; i < 8; ++i) sim.setBool("pad.IN.pad" + std::to_string(i), false);
  sim::Testbench tb(sim, chip->desc.microcode.width, 8);
  tb.run({1});          // IN (0x00) -> bus A
  tb.run({2});          // R0 := bus A? (op2 = R0 load; IN not driving: all ones)
  auto trace = tb.run({3});  // R0 -> B segment 1; OUT1 samples
  ASSERT_EQ(trace.size(), 1u);
  // Segment 2 of bus B (prefix busB#2) must be all ones (precharged, no
  // driver), independent of segment 1's value.
  unsigned long long seg2 = 0;
  for (int i = 0; i < 8; ++i) {
    if (sim.getBool("busB#2" + std::to_string(i))) seg2 |= 1ull << i;
  }
  EXPECT_EQ(seg2, 0xffu);
}

}  // namespace
}  // namespace bb
