/// Pass 1 tests: parameter voting, widest-pitch discovery, stretching to
/// the common pitch, power-rail widening, bus segmentation and the core
/// assembly invariants (abutment, trunks, control x-offsets).

#include "cell/flatten.hpp"
#include "core/session.hpp"
#include "core/samples.hpp"
#include "elements/slicekit.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

using elements::lam;

std::unique_ptr<core::CompiledChip> compileOk(icl::ChipDesc desc,
                                              core::CompileOptions opts = {}) {
  auto result = core::compileChip(std::move(desc), std::move(opts));
  EXPECT_TRUE(result) << result.diagnostics().toString();
  return result ? std::move(*result) : nullptr;
}

TEST(Pass1, ColumnsAbutWithoutGapsOrOverlaps) {
  auto chip = compileOk(core::samples::smallChip(4));
  ASSERT_NE(chip, nullptr);
  geom::Coord expect = lam(8);  // after the west GND trunk
  for (const core::PlacedElement& pe : chip->placed) {
    EXPECT_EQ(pe.x, expect) << pe.name;
    expect += pe.column->width();
  }
  // Plus the east Vdd trunk.
  EXPECT_EQ(expect + lam(8), chip->stats.coreWidth);
}

TEST(Pass1, ControlOffsetsInsideTheirColumns) {
  auto chip = compileOk(core::samples::largeChip(8, 4));
  ASSERT_NE(chip, nullptr);
  for (const core::PlacedElement& pe : chip->placed) {
    for (const elements::ControlLine& cl : pe.controls) {
      EXPECT_GE(cl.xOffset, pe.x) << cl.name;
      EXPECT_LE(cl.xOffset, pe.x + pe.column->width()) << cl.name;
    }
  }
}

TEST(Pass1, AllControlsHaveCompilableDecodes) {
  auto chip = compileOk(core::samples::largeChip(8, 4));
  ASSERT_NE(chip, nullptr);
  for (const elements::ControlLine& cl : chip->controls) {
    icl::DiagnosticList d;
    (void)icl::compileDecode(cl.decode, chip->desc.microcode, d);
    EXPECT_FALSE(d.hasErrors()) << cl.name << ": " << cl.decode;
  }
}

TEST(Pass1, PowerRailsWidenWithDemand) {
  // 2-bit vs 16-bit versions of the same chip: more bits, more depletion
  // loads, more static current, wider rails (the stretch-for-power
  // mechanism of the paper).
  auto narrow = compileOk(core::samples::smallChip(2));
  auto wide = compileOk(core::samples::smallChip(16));
  ASSERT_NE(narrow, nullptr);
  ASSERT_NE(wide, nullptr);
  EXPECT_GT(wide->stats.power_ua, narrow->stats.power_ua);
  EXPECT_GE(wide->stats.powerRailWidth, narrow->stats.powerRailWidth);
  EXPECT_GE(narrow->stats.powerRailWidth, lam(4));  // never below default
}

TEST(Pass1, RailCapacityOptionControlsWidening) {
  core::CompileOptions generous;
  generous.pass1.railCapacityUaPerLambda = 1e9;  // infinite capacity
  auto thin = compileOk(core::samples::smallChip(8), generous);
  core::CompileOptions stingy;
  stingy.pass1.railCapacityUaPerLambda = 10.0;  // terrible metal
  auto thick = compileOk(core::samples::smallChip(8), stingy);
  ASSERT_NE(thin, nullptr);
  ASSERT_NE(thick, nullptr);
  EXPECT_EQ(thin->stats.powerRailWidth, lam(4));
  EXPECT_GT(thick->stats.powerRailWidth, thin->stats.powerRailWidth);
  // Widening grows the pitch (rails are inside every slice).
  EXPECT_GT(thick->stats.pitch, thin->stats.pitch);
  // And the chip still simulates: widening must not break anything.
  EXPECT_GT(thick->logic.gates().size(), 0u);
}

TEST(Pass1, PitchEqualsWidestNaturalPlusWidening) {
  auto chip = compileOk(core::samples::smallChip(4));
  ASSERT_NE(chip, nullptr);
  const geom::Coord widen = (chip->stats.powerRailWidth - lam(4));
  EXPECT_EQ(chip->stats.pitch, chip->stats.naturalPitchMax + 2 * widen);
}

TEST(Pass1, CoreHeightIsDataWidthTimesPitch) {
  for (int width : {2, 5, 8, 13}) {
    auto chip = compileOk(core::samples::smallChip(width));
    ASSERT_NE(chip, nullptr);
    EXPECT_EQ(chip->stats.coreHeight, chip->stats.pitch * width) << width;
  }
}

TEST(Pass1, TrunksExposeSupplyPads) {
  auto chip = compileOk(core::samples::smallChip(4));
  ASSERT_NE(chip, nullptr);
  bool vdd = false, gnd = false;
  for (const cell::Bristle& b : chip->core->bristles()) {
    vdd |= b.flavor == cell::BristleFlavor::PadVdd;
    gnd |= b.flavor == cell::BristleFlavor::PadGnd;
  }
  EXPECT_TRUE(vdd);
  EXPECT_TRUE(gnd);
}

TEST(Pass1, PowerDemandAggregatesElementLoads) {
  auto chip = compileOk(core::samples::smallChip(8));
  ASSERT_NE(chip, nullptr);
  double sum = 0;
  for (const core::PlacedElement& pe : chip->placed) sum += pe.column->powerDemand();
  EXPECT_DOUBLE_EQ(chip->stats.power_ua, sum);
  EXPECT_GT(sum, 0);
}

TEST(Pass1, EmptyCoreDiagnosed) {
  auto result = core::compileChip(
      "chip empty; microcode width 4 { field op [0:3]; } data width 4; buses A; core { }");
  EXPECT_FALSE(result);
  EXPECT_TRUE(result.diagnostics().hasErrors());
}

// Property sweep: the common-pitch invariant holds for every data width.
class Pass1Width : public ::testing::TestWithParam<int> {};

TEST_P(Pass1Width, EveryColumnSameHeight) {
  auto chip = compileOk(core::samples::largeChip(GetParam(), 4));
  ASSERT_NE(chip, nullptr);
  for (const core::PlacedElement& pe : chip->placed) {
    EXPECT_EQ(pe.column->height(), chip->stats.coreHeight) << pe.name;
  }
}

TEST_P(Pass1Width, BusTracksAlignAcrossColumns) {
  // The interface contract: bus track y positions are identical in every
  // slice row of every column (tracks sit below the pitch stretch line,
  // so stretching must not move them).
  auto chip = compileOk(core::samples::smallChip(GetParam()));
  ASSERT_NE(chip, nullptr);
  const auto& k = elements::contract();
  for (const core::PlacedElement& pe : chip->placed) {
    const cell::FlatLayout flat = cell::flatten(*pe.column);
    // Look for metal covering the bus-A track in row 0.
    bool found = false;
    for (const geom::Rect& r : flat.on(tech::Layer::Metal)) {
      if (r.y0 <= k.busAY0 && r.y1 >= k.busAY1 && r.width() >= pe.column->width()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << pe.name << ": bus A track missing or misaligned in row 0";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, Pass1Width, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace bb
