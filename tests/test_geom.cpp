/// Geometry substrate unit + property tests.

#include "geom/geometry.hpp"
#include "geom/transform.hpp"

#include <gtest/gtest.h>

namespace bb::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4}, b{-1, 2};
  EXPECT_EQ(a + b, (Point{2, 6}));
  EXPECT_EQ(a - b, (Point{4, 2}));
  EXPECT_EQ(manhattan(a, b), 4 + 2);
}

TEST(Rect, NormalizesOnConstruction) {
  const Rect r{10, 20, 0, 5};
  EXPECT_EQ(r.x0, 0);
  EXPECT_EQ(r.y0, 5);
  EXPECT_EQ(r.x1, 10);
  EXPECT_EQ(r.y1, 20);
}

TEST(Rect, OverlapVsTouch) {
  const Rect a{0, 0, 10, 10};
  const Rect edge{10, 0, 20, 10};
  const Rect apart{11, 0, 20, 10};
  EXPECT_FALSE(a.overlaps(edge));
  EXPECT_TRUE(a.touches(edge));
  EXPECT_FALSE(a.touches(apart));
}

TEST(Rect, IntersectAndUnion) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 15, 15};
  auto i = a.intersectWith(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, (Rect{5, 5, 10, 10}));
  EXPECT_EQ(a.unionWith(b), (Rect{0, 0, 15, 15}));
  EXPECT_FALSE(a.intersectWith(Rect{20, 20, 30, 30}).has_value());
}

TEST(Rect, ExpandedShrinkCollapsesGracefully) {
  const Rect a{0, 0, 4, 4};
  EXPECT_EQ(a.expanded(2), (Rect{-2, -2, 6, 6}));
  const Rect s = a.expanded(-3);
  EXPECT_TRUE(s.isEmpty());
}

TEST(Polygon, ShoelaceArea) {
  Polygon p;
  p.pts = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_EQ(p.area(), 100);
  EXPECT_EQ(p.signedDoubleArea(), 200);  // counter-clockwise positive
}

TEST(Polygon, ContainsEvenOdd) {
  Polygon l;  // L-shape
  l.pts = {{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}};
  EXPECT_TRUE(l.contains({5, 5}));
  EXPECT_TRUE(l.contains({5, 15}));
  EXPECT_FALSE(l.contains({15, 15}));
  EXPECT_TRUE(l.contains({0, 0}));  // boundary counts
}

TEST(Path, RectDecompositionCoversCorners) {
  Path p;
  p.width = 4;
  p.pts = {{0, 0}, {10, 0}, {10, 10}};
  const auto rects = p.toRects();
  ASSERT_EQ(rects.size(), 2u);
  // The corner (10,0) must be covered by both segments' end caps.
  EXPECT_TRUE(rects[0].contains(Point{10, 0}));
  EXPECT_TRUE(rects[1].contains(Point{10, 0}));
  EXPECT_EQ(p.length(), 20);
}

TEST(UnionArea, OverlapsCountedOnce) {
  std::vector<Rect> rs = {{0, 0, 10, 10}, {5, 0, 15, 10}, {100, 100, 101, 101}};
  EXPECT_EQ(unionArea(rs), 150 + 1);
}

TEST(UnionArea, EmptyAndDegenerate) {
  EXPECT_EQ(unionArea({}), 0);
  EXPECT_EQ(unionArea({Rect{0, 0, 0, 10}}), 0);
}

TEST(ConnectedComponents, GroupsTouching) {
  std::vector<Rect> rs = {{0, 0, 10, 10}, {10, 0, 20, 10}, {40, 40, 50, 50}};
  const auto cc = connectedComponents(rs);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.componentOf[0], cc.componentOf[1]);
  EXPECT_NE(cc.componentOf[0], cc.componentOf[2]);
}

// --- transform group properties (parameterized over all orientations) ---

class OrientationP : public ::testing::TestWithParam<Orientation> {};

TEST_P(OrientationP, InverseComposesToIdentity) {
  const Orientation o = GetParam();
  EXPECT_EQ(compose(o, inverse(o)), Orientation::R0);
  EXPECT_EQ(compose(inverse(o), o), Orientation::R0);
}

TEST_P(OrientationP, ActionMatchesComposition) {
  const Orientation o = GetParam();
  const Point probe{5, 2};
  for (Orientation p : kAllOrientations) {
    EXPECT_EQ(apply(compose(o, p), probe), apply(o, apply(p, probe)))
        << name(o) << " * " << name(p);
  }
}

TEST_P(OrientationP, PreservesManhattanLength) {
  const Orientation o = GetParam();
  const Point a{3, 7}, b{-2, 5};
  EXPECT_EQ(manhattan(apply(o, a), apply(o, b)), manhattan(a, b));
}

TEST_P(OrientationP, TransformRoundTrip) {
  const Transform t{GetParam(), {17, -9}};
  const Point p{4, 11};
  EXPECT_EQ(t.inverted()(t(p)), p);
  const Rect r{-3, 2, 9, 20};
  EXPECT_EQ(t.inverted()(t(r)), r);
}

INSTANTIATE_TEST_SUITE_P(AllOrientations, OrientationP,
                         ::testing::ValuesIn(kAllOrientations),
                         [](const ::testing::TestParamInfo<Orientation>& i) {
                           return std::string(name(i.param));
                         });

TEST(Transform, CompositionAssociative) {
  const Transform a{Orientation::R90, {3, 4}};
  const Transform b{Orientation::MX, {-1, 7}};
  const Transform c{Orientation::MY90, {5, 0}};
  const Point p{11, -2};
  EXPECT_EQ(((a * b) * c)(p), (a * (b * c))(p));
}

}  // namespace
}  // namespace bb::geom
