/// Geometry substrate unit + property tests.

#include "geom/geometry.hpp"
#include "geom/transform.hpp"

#include <gtest/gtest.h>

namespace bb::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4}, b{-1, 2};
  EXPECT_EQ(a + b, (Point{2, 6}));
  EXPECT_EQ(a - b, (Point{4, 2}));
  EXPECT_EQ(manhattan(a, b), 4 + 2);
}

TEST(Rect, NormalizesOnConstruction) {
  const Rect r{10, 20, 0, 5};
  EXPECT_EQ(r.x0, 0);
  EXPECT_EQ(r.y0, 5);
  EXPECT_EQ(r.x1, 10);
  EXPECT_EQ(r.y1, 20);
}

TEST(Rect, OverlapVsTouch) {
  const Rect a{0, 0, 10, 10};
  const Rect edge{10, 0, 20, 10};
  const Rect apart{11, 0, 20, 10};
  EXPECT_FALSE(a.overlaps(edge));
  EXPECT_TRUE(a.touches(edge));
  EXPECT_FALSE(a.touches(apart));
}

TEST(Rect, IntersectAndUnion) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 15, 15};
  auto i = a.intersectWith(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, (Rect{5, 5, 10, 10}));
  EXPECT_EQ(a.unionWith(b), (Rect{0, 0, 15, 15}));
  EXPECT_FALSE(a.intersectWith(Rect{20, 20, 30, 30}).has_value());
}

TEST(Rect, ExpandedShrinkCollapsesGracefully) {
  const Rect a{0, 0, 4, 4};
  EXPECT_EQ(a.expanded(2), (Rect{-2, -2, 6, 6}));
  const Rect s = a.expanded(-3);
  EXPECT_TRUE(s.isEmpty());
}

TEST(Polygon, ShoelaceArea) {
  Polygon p;
  p.pts = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_EQ(p.area(), 100);
  EXPECT_EQ(p.signedDoubleArea(), 200);  // counter-clockwise positive
}

TEST(Polygon, ContainsEvenOdd) {
  Polygon l;  // L-shape
  l.pts = {{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}};
  EXPECT_TRUE(l.contains({5, 5}));
  EXPECT_TRUE(l.contains({5, 15}));
  EXPECT_FALSE(l.contains({15, 15}));
  EXPECT_TRUE(l.contains({0, 0}));  // boundary counts
}

TEST(Path, RectDecompositionCoversCorners) {
  Path p;
  p.width = 4;
  p.pts = {{0, 0}, {10, 0}, {10, 10}};
  const auto rects = p.toRects();
  ASSERT_EQ(rects.size(), 2u);
  // The corner (10,0) must be covered by both segments' end caps.
  EXPECT_TRUE(rects[0].contains(Point{10, 0}));
  EXPECT_TRUE(rects[1].contains(Point{10, 0}));
  EXPECT_EQ(p.length(), 20);
}

TEST(Rect, CenterFloorsTowardNegativeInfinity) {
  // Odd-extent centers must round the same way on both sides of the
  // origin; `/ 2` truncation used to bias negative-space rects up/right.
  const Rect pos{2, 2, 5, 5};
  const Rect neg{-5, -5, -2, -2};  // pos mirrored through the origin
  EXPECT_EQ(pos.center(), (Point{3, 3}));
  EXPECT_EQ(neg.center(), (Point{-4, -4}));  // floor(-3.5), not trunc -3
  // Translation invariance: moving the rect moves the center exactly.
  const Point d{7, 7};
  EXPECT_EQ(neg.translated(d).center(), neg.center() + d);
  EXPECT_EQ(pos.translated(Point{-7, -7}).center(), pos.center() - d);
}

TEST(UnionArea, OverlapsCountedOnce) {
  std::vector<Rect> rs = {{0, 0, 10, 10}, {5, 0, 15, 10}, {100, 100, 101, 101}};
  EXPECT_EQ(unionArea(rs), 150 + 1);
  EXPECT_EQ(unionAreaBrute(rs), 150 + 1);
}

TEST(UnionArea, EmptyAndDegenerate) {
  EXPECT_EQ(unionArea({}), 0);
  EXPECT_EQ(unionArea({Rect{0, 0, 0, 10}}), 0);
}

TEST(UnionArea, DuplicatesCountedOnce) {
  const Rect r{3, 3, 9, 8};
  std::vector<Rect> rs = {r, r, r, r};
  EXPECT_EQ(unionArea(rs), r.area());
  EXPECT_EQ(unionAreaBrute(rs), r.area());
}

TEST(UnionArea, FullyNestedCountedOnce) {
  std::vector<Rect> rs = {{0, 0, 20, 20}, {5, 5, 15, 15}, {8, 8, 9, 9}};
  EXPECT_EQ(unionArea(rs), 400);
  EXPECT_EQ(unionAreaBrute(rs), 400);
}

TEST(UnionArea, EmptyRectsLeftInPlace) {
  // DRC reuses one scratch vector across calls: empty rects must be
  // skipped in place, never erased or reordered.
  const std::vector<Rect> rs = {{0, 0, 0, 10},   // empty (zero width)
                                {0, 0, 10, 10},
                                {4, 4, 4, 4},    // empty (point)
                                {10, 0, 20, 10}};
  const std::vector<Rect> before = rs;
  EXPECT_EQ(unionArea(rs), 200);
  EXPECT_EQ(rs, before);
  EXPECT_EQ(unionAreaBrute(rs), 200);
  EXPECT_EQ(rs, before);
}

TEST(UnionArea, CoordExtremesStayExact) {
  // Far-flung artwork at +-1e15 with modest extents: huge empty slabs
  // between clusters must contribute exactly zero, with no overflow.
  const Coord far = 1'000'000'000'000'000;
  std::vector<Rect> rs = {{-far, -far, -far + 100, -far + 50},
                          {-far + 60, -far + 25, -far + 160, -far + 75},
                          {far - 200, far - 40, far, far},
                          {far - 200, far - 40, far, far}};  // duplicate at the extreme
  const Coord expected = (100 * 50 + 100 * 50 - 40 * 25) + 200 * 40;
  EXPECT_EQ(unionArea(rs), expected);
  EXPECT_EQ(unionAreaBrute(rs), expected);
}

TEST(ConnectedComponents, GroupsTouching) {
  std::vector<Rect> rs = {{0, 0, 10, 10}, {10, 0, 20, 10}, {40, 40, 50, 50}};
  const auto cc = connectedComponents(rs);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.componentOf[0], cc.componentOf[1]);
  EXPECT_NE(cc.componentOf[0], cc.componentOf[2]);
}

// --- transform group properties (parameterized over all orientations) ---

class OrientationP : public ::testing::TestWithParam<Orientation> {};

TEST_P(OrientationP, InverseComposesToIdentity) {
  const Orientation o = GetParam();
  EXPECT_EQ(compose(o, inverse(o)), Orientation::R0);
  EXPECT_EQ(compose(inverse(o), o), Orientation::R0);
}

TEST_P(OrientationP, ActionMatchesComposition) {
  const Orientation o = GetParam();
  const Point probe{5, 2};
  for (Orientation p : kAllOrientations) {
    EXPECT_EQ(apply(compose(o, p), probe), apply(o, apply(p, probe)))
        << name(o) << " * " << name(p);
  }
}

TEST_P(OrientationP, PreservesManhattanLength) {
  const Orientation o = GetParam();
  const Point a{3, 7}, b{-2, 5};
  EXPECT_EQ(manhattan(apply(o, a), apply(o, b)), manhattan(a, b));
}

TEST_P(OrientationP, TransformRoundTrip) {
  const Transform t{GetParam(), {17, -9}};
  const Point p{4, 11};
  EXPECT_EQ(t.inverted()(t(p)), p);
  const Rect r{-3, 2, 9, 20};
  EXPECT_EQ(t.inverted()(t(r)), r);
}

INSTANTIATE_TEST_SUITE_P(AllOrientations, OrientationP,
                         ::testing::ValuesIn(kAllOrientations),
                         [](const ::testing::TestParamInfo<Orientation>& i) {
                           return std::string(name(i.param));
                         });

TEST(Transform, CompositionAssociative) {
  const Transform a{Orientation::R90, {3, 4}};
  const Transform b{Orientation::MX, {-1, 7}};
  const Transform c{Orientation::MY90, {5, 0}};
  const Point p{11, -2};
  EXPECT_EQ(((a * b) * c)(p), (a * (b * c))(p));
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  // (a * b)(x) == a(b(x)) for every orientation pair, with translations
  // deep in negative space, on points and on rects — the identity the
  // hierarchical flattener and placement index lean on.
  const Point p{-37, 451};
  const Rect r{-1003, -77, -985, -31};
  for (const Orientation oa : kAllOrientations) {
    for (const Orientation ob : kAllOrientations) {
      const Transform a{oa, {-201, 97}};
      const Transform b{ob, {58, -4009}};
      const Transform ab = a * b;
      EXPECT_EQ(ab(p), a(b(p))) << name(oa) << " * " << name(ob);
      EXPECT_EQ(ab(r), a(b(r))) << name(oa) << " * " << name(ob);
    }
  }
}

TEST(Transform, InverseRoundTripsUnderCompositionChains) {
  const Rect r{-309, -515, -280, -462};
  const Point p{-123, -8};
  for (const Orientation oa : kAllOrientations) {
    for (const Orientation ob : kAllOrientations) {
      // Mixed rotation + mirror + translation chains, negative offsets.
      const Transform t = Transform{oa, {-71, 33}} * Transform{ob, {14, -950}};
      const Transform inv = t.inverted();
      EXPECT_EQ(inv(t(r)), r) << name(oa) << " * " << name(ob);
      EXPECT_EQ(t(inv(p)), p) << name(oa) << " * " << name(ob);
      // t * t^-1 is the identity transform, not merely pointwise-identity.
      EXPECT_EQ(t * inv, (Transform{})) << name(oa) << " * " << name(ob);
      EXPECT_EQ(inv * t, (Transform{})) << name(oa) << " * " << name(ob);
    }
  }
}

TEST(Transform, RectCenterCommutesWithRigidTransforms) {
  // center() floors toward negative infinity, so it commutes exactly
  // with any of the eight orientations only on parity-even rects; the
  // layout generators keep everything on the quarter-lambda grid with
  // even extents, and the hierarchical CIF writer (B-record centers of
  // transformed rects) relies on this invariance.
  const Rect r{-40, -18, -12, 6};  // even width and height
  for (const Orientation o : kAllOrientations) {
    const Transform t{o, {-7, 13}};
    EXPECT_EQ(t(r).center(), t(r.center())) << name(o);
  }
  // Pure translations commute regardless of parity.
  const Rect odd{-5, -5, 2, 4};
  const Transform shift = Transform::translate({-1001, 77});
  EXPECT_EQ(shift(odd).center(), shift(odd.center()));
}

}  // namespace
}  // namespace bb::geom
