/// Input-language tests: lexer, parser, semantic checks, conditional
/// assembly, and the decode-expression compiler (with exhaustive
/// parameterized sweeps — decode correctness is the decoder's contract).

#include "icl/eval.hpp"
#include "icl/parser.hpp"

#include <gtest/gtest.h>

namespace bb::icl {
namespace {

const char* kGood = R"(
chip demo;
var PROTO = true;
microcode width 8 {
  field op  [0:2];
  field sel [3:4];
  field imm [5:7];
}
data width 8;
buses A, B;
core {
  register R0 (in = A, out = B, load = "op==1", drive = "op==2");
  if PROTO {
    probe P (bus = A, bit = 0);
  } else {
    constant C (bus = A, value = 3, drive = "op==3");
  }
}
)";

TEST(Lexer, TokensAndComments) {
  DiagnosticList d;
  auto toks = tokenize("foo 0x1F 42 == != ! & | # comment\n\"str\" ;", d);
  ASSERT_FALSE(d.hasErrors());
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokKind::Ident);
  EXPECT_EQ(toks[1].number, 31);
  EXPECT_EQ(toks[2].number, 42);
  EXPECT_EQ(toks[3].kind, TokKind::EqEq);
  EXPECT_EQ(toks[4].kind, TokKind::BangEq);
  EXPECT_EQ(toks[5].kind, TokKind::Bang);
  EXPECT_EQ(toks[8].kind, TokKind::String);
  EXPECT_EQ(toks[8].text, "str");
}

TEST(Lexer, ErrorsReported) {
  DiagnosticList d;
  (void)tokenize("\"unterminated", d);
  EXPECT_TRUE(d.hasErrors());
  DiagnosticList d2;
  (void)tokenize("@", d2);
  EXPECT_TRUE(d2.hasErrors());
}

TEST(Parser, GoodChipParses) {
  DiagnosticList d;
  auto chip = parseChip(kGood, d);
  ASSERT_TRUE(chip.has_value()) << d.toString();
  EXPECT_EQ(chip->name, "demo");
  EXPECT_EQ(chip->microcode.width, 8);
  EXPECT_EQ(chip->microcode.fields.size(), 3u);
  EXPECT_EQ(chip->dataWidth, 8);
  EXPECT_EQ(chip->buses.size(), 2u);
  EXPECT_EQ(chip->core.size(), 2u);
  EXPECT_TRUE(chip->vars.at("PROTO"));
}

TEST(Parser, ReportsOverlappingFields) {
  DiagnosticList d;
  auto chip = parseChip(
      "chip x; microcode width 8 { field a [0:3]; field b [3:5]; } data width 4; buses A; "
      "core { register R (in=A, out=A, load=\"a==0\", drive=\"a==1\"); }",
      d);
  EXPECT_FALSE(chip.has_value());
  EXPECT_NE(d.toString().find("overlaps"), std::string::npos);
}

TEST(Parser, ReportsFieldOutOfRange) {
  DiagnosticList d;
  auto chip = parseChip(
      "chip x; microcode width 4 { field a [0:5]; } data width 4; buses A; core { }", d);
  EXPECT_FALSE(chip.has_value());
  EXPECT_NE(d.toString().find("exceeds"), std::string::npos);
}

TEST(Parser, ReportsDuplicateElementNames) {
  DiagnosticList d;
  auto chip = parseChip(
      "chip x; microcode width 4 { field a [0:1]; } data width 4; buses A; "
      "core { register R (load=\"a==0\", drive=\"a==1\"); register R; }",
      d);
  EXPECT_FALSE(chip.has_value());
  EXPECT_NE(d.toString().find("duplicate element"), std::string::npos);
}

TEST(Parser, ReportsMissingSections) {
  DiagnosticList d;
  auto chip = parseChip("chip x;", d);
  EXPECT_FALSE(chip.has_value());
  const std::string s = d.toString();
  EXPECT_NE(s.find("microcode"), std::string::npos);
  EXPECT_NE(s.find("buses"), std::string::npos);
}

TEST(Parser, RecoversToReportMultipleErrors) {
  DiagnosticList d;
  (void)parseChip(
      "chip x; microcode width 4 { field a [0:9]; field a [0:1]; } data width 999; buses A; "
      "core { }",
      d);
  int errors = 0;
  for (const Diagnostic& di : d.all()) {
    if (di.severity == Severity::Error) ++errors;
  }
  EXPECT_GE(errors, 3);
}

TEST(CondAssembly, SelectsArmByVariable) {
  DiagnosticList d;
  auto chip = parseChip(kGood, d);
  ASSERT_TRUE(chip.has_value());
  auto withProto = assembleCore(*chip, {}, d);
  ASSERT_FALSE(d.hasErrors());
  ASSERT_EQ(withProto.size(), 2u);
  EXPECT_EQ(withProto[1].kind, "probe");
  auto without = assembleCore(*chip, {{"PROTO", false}}, d);
  ASSERT_EQ(without.size(), 2u);
  EXPECT_EQ(without[1].kind, "constant");
}

TEST(CondAssembly, UnknownVariableDiagnosed) {
  DiagnosticList d;
  auto chip = parseChip(
      "chip x; microcode width 4 { field a [0:1]; } data width 4; buses A; "
      "core { if NOPE { register R (load=\"a==0\", drive=\"a==1\"); } }",
      d);
  ASSERT_TRUE(chip.has_value()) << d.toString();
  (void)assembleCore(*chip, {}, d);
  EXPECT_TRUE(d.hasErrors());
}

// --- decode expressions ---------------------------------------------------

MicrocodeDecl mc8() {
  MicrocodeDecl m;
  m.width = 8;
  m.fields = {{"op", 0, 2, {}}, {"flag", 3, 3, {}}, {"sel", 4, 6, {}}};
  return m;
}

/// Reference evaluator: parse-independent semantics of the expression
/// language over a concrete word.
bool refOp(unsigned long long w, int lo, int hi, long long v) {
  const unsigned long long field = (w >> lo) & ((1ull << (hi - lo + 1)) - 1);
  return field == static_cast<unsigned long long>(v);
}

class DecodeSweep : public ::testing::TestWithParam<unsigned long long> {};

TEST_P(DecodeSweep, MatchesReference) {
  const MicrocodeDecl m = mc8();
  DiagnosticList d;
  const unsigned long long w = GetParam();
  struct Case {
    const char* expr;
    bool expected;
  };
  const Case cases[] = {
      {"op==3", refOp(w, 0, 2, 3)},
      {"op!=3", !refOp(w, 0, 2, 3)},
      {"flag", refOp(w, 3, 3, 1)},
      {"!flag", refOp(w, 3, 3, 0)},
      {"op==1 & sel==5", refOp(w, 0, 2, 1) && refOp(w, 4, 6, 5)},
      {"op==1 | op==2", refOp(w, 0, 2, 1) || refOp(w, 0, 2, 2)},
      {"(op==1 | op==2) & !flag",
       (refOp(w, 0, 2, 1) || refOp(w, 0, 2, 2)) && refOp(w, 3, 3, 0)},
      {"1", true},
      {"0", false},
      {"op==1 & op==2", false},  // contradiction
  };
  for (const Case& c : cases) {
    const SumOfProducts sop = compileDecode(c.expr, m, d);
    ASSERT_FALSE(d.hasErrors()) << c.expr << ": " << d.toString();
    EXPECT_EQ(sop.matches(w), c.expected) << c.expr << " on word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWords, DecodeSweep,
                         ::testing::Range<unsigned long long>(0, 256));

TEST(Decode, ErrorsDiagnosed) {
  const MicrocodeDecl m = mc8();
  {
    DiagnosticList d;
    (void)compileDecode("nosuch==1", m, d);
    EXPECT_TRUE(d.hasErrors());
  }
  {
    DiagnosticList d;
    (void)compileDecode("op", m, d);  // bare multi-bit field
    EXPECT_TRUE(d.hasErrors());
  }
  {
    DiagnosticList d;
    (void)compileDecode("op==9", m, d);  // out of range
    EXPECT_TRUE(d.hasErrors());
  }
}

TEST(Cube, IntersectAndLiterals) {
  const MicrocodeDecl m = mc8();
  DiagnosticList d;
  const SumOfProducts a = compileDecode("op==1", m, d);
  ASSERT_EQ(a.cubes.size(), 1u);
  EXPECT_EQ(a.cubes[0].literals(), 3);
  const SumOfProducts b = compileDecode("flag", m, d);
  auto i = a.cubes[0].intersect(b.cubes[0]);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->literals(), 4);
  // Conflicting cubes have no intersection.
  const SumOfProducts c = compileDecode("op==2", m, d);
  EXPECT_FALSE(a.cubes[0].intersect(c.cubes[0]).has_value());
}

}  // namespace
}  // namespace bb::icl
