/// Extraction tests: rectangle subtraction, connectivity, transistor
/// recognition on hand-built structures and on the kit's cells.

#include "elements/slicekit.hpp"
#include "extract/extract.hpp"
#include "netlist/spice.hpp"

#include <gtest/gtest.h>

namespace bb::extract {
namespace {

using geom::lambda;
using geom::Rect;
using tech::Layer;

TEST(SubtractRects, FourWaySplit) {
  const auto out = subtractRects(Rect{0, 0, 10, 10}, {Rect{4, 4, 6, 6}});
  ASSERT_EQ(out.size(), 4u);
  geom::Coord area = 0;
  for (const Rect& r : out) area += r.area();
  EXPECT_EQ(area, 100 - 4);
}

TEST(SubtractRects, NoOverlapNoChange) {
  const auto out = subtractRects(Rect{0, 0, 10, 10}, {Rect{20, 20, 30, 30}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Rect{0, 0, 10, 10}));
}

TEST(SubtractRects, FullCoverEmpty) {
  EXPECT_TRUE(subtractRects(Rect{0, 0, 10, 10}, {Rect{-1, -1, 11, 11}}).empty());
}

TEST(Extract, SinglePassTransistor) {
  cell::Cell c("pass");
  // Horizontal diffusion crossed by vertical poly.
  c.addRect(Layer::Diffusion, Rect{0, lambda(4), lambda(20), lambda(6)});
  c.addRect(Layer::Poly, Rect{lambda(9), 0, lambda(11), lambda(10)});
  const ExtractResult ex = extractCell(c);
  ASSERT_EQ(ex.netlist.transistors().size(), 1u);
  const auto& t = ex.netlist.transistors()[0];
  EXPECT_EQ(t.kind, netlist::TransKind::Enhancement);
  EXPECT_NE(t.source, t.drain);  // diffusion fractured at the gate
  EXPECT_EQ(t.length, lambda(2));
  EXPECT_EQ(t.width, lambda(2));
  EXPECT_EQ(ex.unresolvedGates, 0u);
}

TEST(Extract, DepletionRecognizedByImplant) {
  cell::Cell c("dep");
  c.addRect(Layer::Diffusion, Rect{0, lambda(4), lambda(20), lambda(6)});
  c.addRect(Layer::Poly, Rect{lambda(9), 0, lambda(11), lambda(10)});
  c.addRect(Layer::Implant, Rect{lambda(7), lambda(2), lambda(13), lambda(8)});
  const ExtractResult ex = extractCell(c);
  ASSERT_EQ(ex.netlist.transistors().size(), 1u);
  EXPECT_EQ(ex.netlist.transistors()[0].kind, netlist::TransKind::Depletion);
}

TEST(Extract, BuriedContactIsNotAGate) {
  cell::Cell c("buried");
  c.addRect(Layer::Diffusion, Rect{0, 0, lambda(4), lambda(4)});
  c.addRect(Layer::Poly, Rect{0, 0, lambda(4), lambda(4)});
  c.addRect(Layer::Buried, Rect{0, 0, lambda(4), lambda(4)});
  const ExtractResult ex = extractCell(c);
  EXPECT_TRUE(ex.netlist.transistors().empty());
  // And the poly and diff are one net.
  EXPECT_EQ(ex.netCount, 1u);
}

TEST(Extract, ContactConnectsMetalToDiff) {
  cell::Cell c("via");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(20), lambda(4)});
  c.addRect(Layer::Diffusion, Rect{0, 0, lambda(4), lambda(20)});
  const ExtractResult before = extractCell(c);
  EXPECT_EQ(before.netCount, 2u);
  c.addContact({lambda(2), lambda(2)}, Layer::Diffusion, Layer::Metal);
  const ExtractResult after = extractCell(c);
  EXPECT_EQ(after.netCount, 1u);
}

TEST(Extract, NetNamesFromBristles) {
  cell::Cell c("named");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(20), lambda(4)});
  cell::Bristle b;
  b.name = "vdd";
  b.net = "vdd";
  b.layer = Layer::Metal;
  b.pos = {lambda(1), lambda(1)};
  c.addBristle(b);
  const ExtractResult ex = extractCell(c);
  EXPECT_GE(ex.netlist.findNet("vdd"), 0);
}

TEST(Extract, InverterFromKit) {
  // The kit inverter must extract to exactly 2 devices: one enhancement
  // pull-down, one depletion load with gate strapped to the output.
  cell::CellLibrary lib;
  elements::SliceBuilder sb(lib, "inv_t", elements::contract().naturalPitch);
  sb.addInv(/*railInput=*/false, /*outEast=*/false);
  cell::Cell* slice = sb.finish();
  const ExtractResult ex = extractCell(*slice);
  EXPECT_EQ(ex.netlist.enhancementCount(), 1u);
  EXPECT_EQ(ex.netlist.depletionCount(), 1u);
  EXPECT_EQ(ex.unresolvedGates, 0u);
  // Load gate net == load source net (the strap) — find the depletion.
  for (const auto& t : ex.netlist.transistors()) {
    if (t.kind == netlist::TransKind::Depletion) {
      EXPECT_TRUE(t.gate == t.source || t.gate == t.drain);
    }
  }
}

TEST(Extract, RegisterSliceDeviceCount) {
  // Register slice: tap(1) + inv(2) + pass(1) + railgate(1) + taphi(1) = 6.
  cell::CellLibrary lib;
  elements::SliceBuilder sb(lib, "reg_t", elements::contract().naturalPitch);
  sb.addBusTap(elements::BusTrack::A);
  sb.addInv(true, true);
  sb.addM2D();
  sb.addPass();
  sb.addRailGate();
  sb.addBusTap(elements::BusTrack::B, true, true);
  cell::Cell* slice = sb.finish();
  const ExtractResult ex = extractCell(*slice);
  EXPECT_EQ(ex.netlist.transistors().size(), 6u);
  EXPECT_EQ(ex.netlist.depletionCount(), 1u);
  EXPECT_EQ(ex.unresolvedGates, 0u);
}

TEST(Extract, SpiceDeckWrites) {
  cell::Cell c("sp");
  c.addRect(Layer::Diffusion, Rect{0, lambda(4), lambda(20), lambda(6)});
  c.addRect(Layer::Poly, Rect{lambda(9), 0, lambda(11), lambda(10)});
  const ExtractResult ex = extractCell(c);
  const std::string deck = netlist::writeSpice(ex.netlist);
  EXPECT_NE(deck.find(".model nenh"), std::string::npos);
  EXPECT_NE(deck.find("M0"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

}  // namespace
}  // namespace bb::extract
