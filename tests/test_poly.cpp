/// Polygon geometry engine tests: ring hygiene (clean / simple /
/// orientation), exact region booleans and offsets, window clipping
/// edge cases, the SegmentIndex brute-equivalence contract, the DRC
/// polygon width/spacing units (indexed == brute, bit for bit),
/// polygon conductor extraction, hierarchical stitch pruning, CIF
/// import validation and the CIF -> GDS polygon round trip with the
/// 8191-vertex BOUNDARY split.

#include "cell/flatten.hpp"
#include "cell/library.hpp"
#include "drc/drc.hpp"
#include "extract/extract.hpp"
#include "geom/poly.hpp"
#include "geom/segment_index.hpp"
#include "geom/sweep.hpp"
#include "layout/cif.hpp"
#include "layout/cif_parser.hpp"
#include "layout/gds.hpp"
#include "tech/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace bb {
namespace {

using geom::Coord;
using geom::lambda;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Segment;
using geom::SegmentIndex;
using tech::Layer;
namespace poly = geom::poly;

Polygon ring(std::initializer_list<Point> pts) {
  Polygon p;
  p.pts.assign(pts);
  return p;
}

Coord regionArea(const std::vector<Rect>& region) {
  Coord a = 0;
  for (const Rect& r : region) a += r.area();
  return a;
}

// ---------------------------------------------------------------------------
// Ring hygiene helpers.

TEST(PolyClean, RemovesDuplicateAndCollinearVertices) {
  const Polygon p = ring({{0, 0}, {5, 0}, {5, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon c = poly::cleanPolygon(p);
  ASSERT_EQ(c.pts.size(), 4u);
  EXPECT_EQ(geom::polygonArea(c), 100);
}

TEST(PolyClean, CollinearJointAcrossRingSeam) {
  // Vertex 0 sits mid-edge: the seam joint is collinear too.
  const Polygon p = ring({{5, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}});
  EXPECT_EQ(poly::cleanPolygon(p).pts.size(), 4u);
}

TEST(PolyClean, DegenerateRingCollapses) {
  EXPECT_LT(poly::cleanPolygon(ring({{0, 0}, {10, 0}, {5, 0}})).pts.size(), 3u);
  EXPECT_LT(poly::cleanPolygon(ring({{0, 0}, {0, 0}, {0, 0}, {0, 0}})).pts.size(), 3u);
}

TEST(PolyArea, OrientationAndMagnitude) {
  const Polygon ccw = ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Polygon cw = ccw;
  std::reverse(cw.pts.begin(), cw.pts.end());
  EXPECT_EQ(geom::polygonDoubleArea(ccw), 200);
  EXPECT_EQ(geom::polygonDoubleArea(cw), -200);
  EXPECT_EQ(geom::polygonArea(ccw), 100);
  EXPECT_EQ(geom::polygonArea(cw), 100);
  EXPECT_TRUE(geom::isCounterClockwise(ccw));
  EXPECT_FALSE(geom::isCounterClockwise(cw));
}

TEST(PolySimple, BowtieSelfIntersects) {
  EXPECT_TRUE(poly::selfIntersects(ring({{0, 0}, {10, 10}, {10, 0}, {0, 10}})));
  EXPECT_FALSE(poly::selfIntersects(ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}})));
}

TEST(PolySimple, FoldBackSpikeSelfIntersects) {
  // Edge folds back on itself beyond the shared vertex.
  EXPECT_TRUE(poly::selfIntersects(ring({{0, 0}, {10, 0}, {4, 0}, {4, 10}})));
}

TEST(PolySimple, NegativeCoordinatesHandled) {
  EXPECT_FALSE(poly::selfIntersects(ring({{-10, -10}, {-2, -10}, {-2, -2}, {-10, -2}})));
}

// ---------------------------------------------------------------------------
// Decomposition and stitching.

TEST(PolyDecompose, SquareIsOneRect) {
  const auto region = poly::rectDecompose(ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  ASSERT_EQ(region.size(), 1u);
  EXPECT_EQ(region[0], (Rect{0, 0, 10, 10}));
}

TEST(PolyDecompose, LShapeExactArea) {
  // 10x10 minus the 6x6 top-right notch, clockwise input accepted.
  const Polygon l = ring({{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10}});
  const auto region = poly::rectDecompose(l);
  EXPECT_EQ(regionArea(region), 100 - 36);
  EXPECT_EQ(region, geom::sweep::unionRects(region));  // normal form
}

TEST(PolyDecompose, NonRectilinearRejected) {
  EXPECT_TRUE(poly::rectDecompose(ring({{0, 0}, {10, 0}, {5, 8}})).empty());
}

TEST(PolyStitch, SquareRoundTrips) {
  const auto rings = poly::regionToPolygons({Rect{0, 0, 10, 10}});
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_EQ(rings[0].pts.size(), 4u);
  EXPECT_TRUE(geom::isCounterClockwise(rings[0]));
}

TEST(PolyStitch, HoleComesBackClockwise) {
  // Frame = 12x12 minus 4x4 center: one outer CCW ring, one CW hole.
  const auto region =
      poly::subtractRegions({Rect{0, 0, 12, 12}}, {Rect{4, 4, 8, 8}});
  const auto rings = poly::regionToPolygons(region);
  ASSERT_EQ(rings.size(), 2u);
  int ccw = 0, cw = 0;
  for (const Polygon& r : rings) (geom::isCounterClockwise(r) ? ccw : cw)++;
  EXPECT_EQ(ccw, 1);
  EXPECT_EQ(cw, 1);
}

TEST(PolyStitch, CheckerboardCornerStaysSimple) {
  // Two squares sharing exactly one corner: the walk must split them
  // into two simple rings, not one figure-eight.
  const auto rings = poly::regionToPolygons({Rect{0, 0, 5, 5}, Rect{5, 5, 10, 10}});
  ASSERT_EQ(rings.size(), 2u);
  for (const Polygon& r : rings) {
    EXPECT_FALSE(poly::selfIntersects(r));
    EXPECT_EQ(geom::polygonArea(r), 25);
  }
}

TEST(PolyStitch, DecomposeInvertsStitch) {
  const auto region = geom::sweep::unionRects(
      {Rect{0, 0, 10, 4}, Rect{0, 4, 4, 10}, Rect{6, 4, 10, 10}});
  std::vector<Rect> back;
  for (const Polygon& r : poly::regionToPolygons(region)) {
    for (const Rect& q : poly::rectDecompose(r)) back.push_back(q);
  }
  EXPECT_EQ(geom::sweep::unionRects(std::move(back)), region);
}

// ---------------------------------------------------------------------------
// Booleans.

TEST(PolyBool, UniteSharedEdgeMergesToOneRing) {
  const auto out = poly::unite({ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}})},
                               {ring({{10, 0}, {20, 0}, {20, 10}, {10, 10}})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(geom::polygonArea(out[0]), 200);
  EXPECT_EQ(out[0].pts.size(), 4u);  // shared edge dissolved
}

TEST(PolyBool, IntersectAndSubtractExact) {
  const poly::PolySet a{ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}})};
  const poly::PolySet b{ring({{4, 4}, {16, 4}, {16, 16}, {4, 16}})};
  const auto i = poly::intersect(a, b);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_EQ(geom::polygonArea(i[0]), 36);
  Coord diffArea = 0;
  for (const Polygon& r : poly::subtract(a, b)) diffArea += geom::polygonArea(r);
  EXPECT_EQ(diffArea, 100 - 36);
}

TEST(PolyBool, DisjointIntersectionEmpty) {
  EXPECT_TRUE(poly::intersect({ring({{0, 0}, {4, 0}, {4, 4}, {0, 4}})},
                              {ring({{10, 10}, {14, 10}, {14, 14}, {10, 14}})})
                  .empty());
}

TEST(PolyBool, NegativeCoordinateRegions) {
  const auto u = poly::unionRegions({Rect{-10, -10, -2, -2}}, {Rect{-6, -6, 2, 2}});
  EXPECT_EQ(regionArea(u), 64 + 64 - 16);
  const auto s = poly::subtractRegions({Rect{-10, -10, -2, -2}}, {Rect{-6, -6, 2, 2}});
  EXPECT_EQ(regionArea(s), 64 - 16);
}

TEST(PolyBool, IndexedIntersectMatchesSmallCase) {
  // intersectRegions flips to a RectIndex above 16 rects on one side;
  // both strategies must agree exactly.
  std::vector<Rect> grid;
  for (int i = 0; i < 40; ++i) grid.push_back(Rect{3 * i, 0, 3 * i + 2, 50});
  const std::vector<Rect> band{Rect{0, 10, 200, 20}};
  const auto viaIndex = poly::intersectRegions(band, grid);
  std::vector<Rect> brute;
  for (const Rect& g : grid) {
    if (auto c = g.intersectWith(Rect{0, 10, 200, 20})) brute.push_back(*c);
  }
  EXPECT_EQ(viaIndex, geom::sweep::unionRects(std::move(brute)));
}

// ---------------------------------------------------------------------------
// Clipping.

TEST(PolyClip, FullyInsideReturnsVerbatim) {
  const Polygon p = ring({{2, 2}, {8, 2}, {8, 8}, {2, 8}});
  const auto out = poly::clipToRect(p, Rect{0, 0, 10, 10});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pts, p.pts);  // identity, not a re-stitched copy
}

TEST(PolyClip, FullyOutsideReturnsEmpty) {
  EXPECT_TRUE(
      poly::clipToRect(ring({{20, 20}, {30, 20}, {30, 30}, {20, 30}}), Rect{0, 0, 10, 10})
          .empty());
}

TEST(PolyClip, CornerGrazingClipsToNothing) {
  // Window touches the polygon at exactly one point: zero-area contact.
  const Polygon p = ring({{10, 10}, {20, 10}, {20, 20}, {10, 20}});
  EXPECT_TRUE(poly::clipToRect(p, Rect{0, 0, 10, 10}).empty());
}

TEST(PolyClip, SharedEdgeWindowClipsToNothing) {
  const Polygon p = ring({{10, 0}, {20, 0}, {20, 10}, {10, 10}});
  EXPECT_TRUE(poly::clipToRect(p, Rect{0, 0, 10, 10}).empty());
}

TEST(PolyClip, RectilinearClipIsExact) {
  // U-shape straddling the window: the window keeps the two arms as two
  // separate rings whose areas add up exactly.
  const Polygon u = ring(
      {{0, 0}, {30, 0}, {30, 20}, {20, 20}, {20, 5}, {10, 5}, {10, 20}, {0, 20}});
  const auto out = poly::clipToRect(u, Rect{0, 10, 30, 20});
  ASSERT_EQ(out.size(), 2u);
  Coord area = 0;
  for (const Polygon& r : out) area += geom::polygonArea(r);
  EXPECT_EQ(area, 2 * (10 * 10));
  for (const Polygon& r : out) EXPECT_FALSE(poly::selfIntersects(r));
}

TEST(PolyClip, DegenerateInputClipsToNothing) {
  EXPECT_TRUE(poly::clipToRect(ring({{0, 0}, {10, 0}}), Rect{-5, -5, 5, 5}).empty());
  EXPECT_TRUE(poly::clipToRect(ring({{0, 0}, {10, 0}, {5, 0}}), Rect{-5, -5, 5, 5}).empty());
}

TEST(PolyClip, TriangleFallbackDeterministic) {
  const Polygon tri = ring({{0, 0}, {80, 0}, {80, 80}});
  const auto a = poly::clipToRect(tri, Rect{60, 60, 120, 120});
  const auto b = poly::clipToRect(tri, Rect{60, 60, 120, 120});
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].pts, b[0].pts);
  for (const Point q : a[0].pts) {
    EXPECT_TRUE((Rect{60, 60, 120, 120}).contains(q));
  }
}

// ---------------------------------------------------------------------------
// Offsets and simplification.

TEST(PolyOffset, OutwardGrowsInwardShrinks) {
  const poly::PolySet sq{ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}})};
  const auto grown = poly::offsetOutward(sq, 3);
  ASSERT_EQ(grown.size(), 1u);
  EXPECT_EQ(geom::polygonArea(grown[0]), 16 * 16);
  const auto shrunk = poly::offsetInward(sq, 3);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(geom::polygonArea(shrunk[0]), 4 * 4);
}

TEST(PolyOffset, InwardErasesThinFeatures) {
  // 4-wide bar dies under erosion by 2 (4 <= 2*2).
  EXPECT_TRUE(poly::offsetInward({ring({{0, 0}, {20, 0}, {20, 4}, {0, 4}})}, 2).empty());
  // 5-wide bar survives (5 > 2*2).
  EXPECT_FALSE(poly::offsetInward({ring({{0, 0}, {20, 0}, {20, 5}, {0, 5}})}, 2).empty());
}

TEST(PolyOffset, ErodeDilateRoundTripOnFatRegion) {
  const std::vector<Rect> region{Rect{0, 0, 20, 20}};
  EXPECT_EQ(poly::dilateRegion(poly::erodeRegion(region, 4), 4), region);
}

TEST(PolyOffset, OutwardClosesNarrowMouthIntoHole) {
  // A C-shaped region whose 2-wide mouth seals under a 1-outward
  // dilation, leaving a clockwise hole ring.
  const auto frame = poly::subtractRegions({Rect{0, 0, 20, 20}}, {Rect{6, 6, 14, 14}});
  // Open a 2-wide mouth from the hole to the outside.
  const auto open = poly::subtractRegions(frame, {Rect{9, 14, 11, 20}});
  const auto sealed = poly::dilateRegion(open, 1);
  // The mouth (2 wide) closes under dilation by 1 from each side: the
  // result has a hole again.
  const auto rings = poly::regionToPolygons(sealed);
  int holes = 0;
  for (const Polygon& r : rings) {
    if (!geom::isCounterClockwise(r)) ++holes;
  }
  EXPECT_EQ(holes, 1);
}

TEST(PolySimplify, NotchRemovedWithinBudget) {
  // Square with a tiny 1x1 notch: double-area error of removing it is
  // small; a generous budget flattens the ring back to 4 vertices.
  const Polygon notched =
      ring({{0, 0}, {10, 0}, {10, 10}, {6, 10}, {6, 9}, {5, 9}, {5, 10}, {0, 10}});
  const Polygon s = poly::simplify(notched, 8);
  EXPECT_EQ(s.pts.size(), 4u);
  // Zero budget only cleans (no vertex here is free).
  EXPECT_EQ(poly::simplify(notched, 0).pts.size(), notched.pts.size());
}

TEST(PolySimplify, AreaErrorBoundHolds) {
  const Polygon notched =
      ring({{0, 0}, {10, 0}, {10, 10}, {6, 10}, {6, 7}, {5, 7}, {5, 10}, {0, 10}});
  const Coord before = geom::polygonArea(notched);
  const Polygon s = poly::simplify(notched, 4);
  const Coord after = geom::polygonArea(s);
  EXPECT_LE(std::abs(2 * (after - before)), 4);
}

// ---------------------------------------------------------------------------
// SegmentIndex: brute equivalence contract.

std::vector<int> bruteTouching(const std::vector<Segment>& segs, const Rect& q) {
  std::vector<int> out;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (geom::segmentTouchesRect(segs[i], q)) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<Segment> fuzzSegments(std::size_t n) {
  std::vector<Segment> segs;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((state >> 33) % 400) - 200;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Point a{next(), next()};
    segs.push_back({a, {a.x + next() / 8, a.y + next() / 8}});
  }
  return segs;
}

TEST(SegIndex, TouchingMatchesBruteOnFuzzedSegments) {
  const std::vector<Segment> segs = fuzzSegments(300);
  const SegmentIndex idx(segs);
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((state >> 33) % 400) - 200;
  };
  for (int t = 0; t < 50; ++t) {
    const Point c{next(), next()};
    const Rect q{c.x, c.y, c.x + (next() & 63), c.y + (next() & 63)};
    EXPECT_EQ(idx.queryTouching(q), bruteTouching(segs, q)) << "query " << t;
  }
}

TEST(SegIndex, WithinIsTouchingOnExpandedWindow) {
  const std::vector<Segment> segs = fuzzSegments(200);
  const SegmentIndex idx(segs);
  const Rect q{-30, -30, 30, 30};
  for (const Coord m : {Coord{0}, Coord{1}, Coord{7}, Coord{40}}) {
    EXPECT_EQ(idx.queryWithin(q, m), idx.queryTouching(q.expandedXY(m, m)));
  }
}

TEST(SegIndex, DiagonalNearMissIsExact) {
  // Segment passes near the rect corner but never touches it: the bbox
  // prefilter alone would return it; the exact predicate must not.
  const std::vector<Segment> segs{{{0, 10}, {10, 0}},   // cuts the corner at distance
                                  {{0, 4}, {4, 0}}};    // crosses through (2,2)
  const SegmentIndex idx(segs);
  EXPECT_EQ(idx.queryTouching(Rect{0, 0, 3, 3}), (std::vector<int>{1}));
  EXPECT_EQ(idx.queryTouching(Rect{4, 4, 6, 6}), (std::vector<int>{0}));
}

TEST(SegIndex, DegenerateAndEmpty) {
  const SegmentIndex empty;
  EXPECT_TRUE(empty.queryTouching(Rect{0, 0, 100, 100}).empty());
  const SegmentIndex pts({Segment{{5, 5}, {5, 5}}});
  EXPECT_EQ(pts.queryTouching(Rect{0, 0, 10, 10}), (std::vector<int>{0}));
  EXPECT_TRUE(pts.queryTouching(Rect{6, 6, 10, 10}).empty());
  EXPECT_GT(pts.approxBytes(), 0u);
}

TEST(SegIndex, EdgesOfClosesTheRing) {
  const auto edges = geom::edgesOf(ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges.back().a, (Point{0, 10}));
  EXPECT_EQ(edges.back().b, (Point{0, 0}));
}

// ---------------------------------------------------------------------------
// DRC polygon units.

bool sameViolations(const drc::DrcReport& a, const drc::DrcReport& b) {
  if (a.violations.size() != b.violations.size()) return false;
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    const drc::Violation &x = a.violations[i], &y = b.violations[i];
    if (x.rule != y.rule || x.layerA != y.layerA || x.layerB != y.layerB ||
        !(x.where == y.where) || x.message != y.message) {
      return false;
    }
  }
  return true;
}

TEST(DrcPoly, ThinPolygonFlaggedByWidthRule) {
  cell::Cell c("thinpoly");
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(10), 0}, {lambda(10), lambda(2)}, {0, lambda(2)}}));
  const auto rep = drc::checkCell(c, tech::meadConwayRules());
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "W.metal.3");
  EXPECT_NE(rep.violations[0].message.find("polygon"), std::string::npos);
}

TEST(DrcPoly, WidePolygonClean) {
  cell::Cell c("widepoly");
  // L-shape, both arms 4L wide (min metal width is 3L).
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(12), 0}, {lambda(12), lambda(4)}, {lambda(4), lambda(4)},
                     {lambda(4), lambda(12)}, {0, lambda(12)}}));
  EXPECT_TRUE(drc::checkCell(c, tech::meadConwayRules()).clean());
}

TEST(DrcPoly, PolygonAbuttingRectIsOneFeature) {
  // A 2L-wide polygon sliver flush against a wide rect: the union is
  // fat, so the opening keeps it — no width violation.
  cell::Cell c("flush");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(4)});
  c.addPolygon(Layer::Metal, ring({{0, lambda(4)}, {lambda(10), lambda(4)},
                                   {lambda(10), lambda(6)}, {0, lambda(6)}}));
  EXPECT_TRUE(drc::checkCell(c, tech::meadConwayRules()).clean());
}

TEST(DrcPoly, PolygonPairSpacingFlagged) {
  cell::Cell c("polyspace");
  c.setBoundary(Rect{-lambda(5), -lambda(5), lambda(20), lambda(20)});
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(10), 0}, {lambda(10), lambda(3)}, {0, lambda(3)}}));
  c.addPolygon(Layer::Metal, ring({{0, lambda(5)}, {lambda(10), lambda(5)},
                                   {lambda(10), lambda(8)}, {0, lambda(8)}}));  // gap 2L
  const auto rep = drc::checkCell(c, tech::meadConwayRules());
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "S.metal.metal.3");
  EXPECT_NE(rep.violations[0].message.find("polygon gap"), std::string::npos);
}

TEST(DrcPoly, PolygonVsRectSpacingFlagged) {
  cell::Cell c("pr");
  c.setBoundary(Rect{-lambda(5), -lambda(5), lambda(20), lambda(20)});
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  c.addPolygon(Layer::Metal, ring({{0, lambda(5)}, {lambda(10), lambda(5)},
                                   {lambda(10), lambda(8)}, {0, lambda(8)}}));
  const auto rep = drc::checkCell(c, tech::meadConwayRules());
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "S.metal.metal.3");
}

TEST(DrcPoly, TouchingPolygonsAreOneFeature) {
  cell::Cell c("touchpoly");
  c.setBoundary(Rect{-lambda(5), -lambda(5), lambda(30), lambda(30)});
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(10), 0}, {lambda(10), lambda(3)}, {0, lambda(3)}}));
  c.addPolygon(Layer::Metal, ring({{lambda(10), 0}, {lambda(20), 0},
                                   {lambda(20), lambda(3)}, {lambda(10), lambda(3)}}));
  EXPECT_TRUE(drc::checkCell(c, tech::meadConwayRules()).clean());
}

TEST(DrcPoly, BridgedPolygonsAreOneFeature) {
  // Two close polygons joined by a rect touching both: one feature.
  cell::Cell c("bridge");
  c.setBoundary(Rect{-lambda(5), -lambda(5), lambda(30), lambda(30)});
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(10), 0}, {lambda(10), lambda(3)}, {0, lambda(3)}}));
  c.addPolygon(Layer::Metal, ring({{0, lambda(5)}, {lambda(10), lambda(5)},
                                   {lambda(10), lambda(8)}, {0, lambda(8)}}));
  c.addRect(Layer::Metal, Rect{0, 0, lambda(3), lambda(8)});
  EXPECT_TRUE(drc::checkCell(c, tech::meadConwayRules()).clean());
}

TEST(DrcPoly, BoundaryExemptionAppliesToPolygons) {
  cell::Cell c("bnd");
  c.setBoundary(Rect{0, 0, lambda(10), lambda(8)});
  // Both polygons span the full width: both touch the boundary.
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(10), 0}, {lambda(10), lambda(3)}, {0, lambda(3)}}));
  c.addPolygon(Layer::Metal, ring({{0, lambda(5)}, {lambda(10), lambda(5)},
                                   {lambda(10), lambda(8)}, {0, lambda(8)}}));
  EXPECT_TRUE(drc::checkCell(c, tech::meadConwayRules()).clean());
  drc::DrcOptions off;
  off.boundaryConditions = false;
  EXPECT_FALSE(drc::checkCell(c, tech::meadConwayRules(), off).clean());
}

TEST(DrcPoly, IndexedMatchesBruteBitForBit) {
  // A mix of violating and clean polygon/rect features across layers.
  cell::Cell c("mix");
  c.setBoundary(Rect{-lambda(10), -lambda(10), lambda(60), lambda(60)});
  c.addPolygon(Layer::Metal,
               ring({{0, 0}, {lambda(10), 0}, {lambda(10), lambda(2)}, {0, lambda(2)}}));
  c.addPolygon(Layer::Metal, ring({{0, lambda(4)}, {lambda(10), lambda(4)},
                                   {lambda(10), lambda(8)}, {0, lambda(8)}}));
  c.addRect(Layer::Metal, Rect{lambda(12), 0, lambda(16), lambda(8)});
  c.addPolygon(Layer::Poly,
               ring({{lambda(20), 0}, {lambda(30), 0}, {lambda(30), lambda(2)},
                     {lambda(24), lambda(2)}, {lambda(24), lambda(10)},
                     {lambda(20), lambda(10)}}));
  c.addRect(Layer::Diffusion, Rect{lambda(20), lambda(3), lambda(23), lambda(10)});
  drc::DrcOptions idxOn, idxOff;
  idxOn.useSpatialIndex = true;
  idxOff.useSpatialIndex = false;
  const auto a = drc::checkCell(c, tech::meadConwayRules(), idxOn);
  const auto b = drc::checkCell(c, tech::meadConwayRules(), idxOff);
  EXPECT_FALSE(a.clean());  // the fixture does violate
  EXPECT_TRUE(sameViolations(a, b));
}

TEST(DrcPoly, PolygonFreeChipUnaffected) {
  // No polygons: the polygon units must contribute nothing, keeping the
  // classic violation list byte-identical.
  cell::Cell c("classic");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(2)});
  const auto rep = drc::checkCell(c, tech::meadConwayRules());
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].message.find("polygon"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Extraction with polygon conductors.

TEST(ExtractPoly, PolygonBridgesTwoRects) {
  cell::Cell c("bridge");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(4), lambda(4)});
  c.addRect(Layer::Metal, Rect{lambda(20), 0, lambda(24), lambda(4)});
  extract::ExtractOptions eo;
  eo.labelFromBristles = false;
  EXPECT_EQ(extract::extractCell(c, eo).netCount, 2u);
  // An L-shaped polygon strap joins them into one net.
  c.addPolygon(Layer::Metal,
               ring({{lambda(2), lambda(4)}, {lambda(22), lambda(4)},
                     {lambda(22), lambda(8)}, {lambda(2), lambda(8)}}));
  EXPECT_EQ(extract::extractCell(c, eo).netCount, 1u);
}

TEST(ExtractPoly, IndexedMatchesBrute) {
  cell::Cell c("mix");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(4), lambda(4)});
  c.addRect(Layer::Diffusion, Rect{0, lambda(10), lambda(20), lambda(12)});
  c.addRect(Layer::Poly, Rect{lambda(8), lambda(8), lambda(10), lambda(14)});
  c.addPolygon(Layer::Metal,
               ring({{lambda(2), lambda(4)}, {lambda(6), lambda(4)}, {lambda(6), lambda(20)},
                     {lambda(2), lambda(20)}}));
  extract::ExtractOptions on, off;
  on.labelFromBristles = off.labelFromBristles = false;
  on.useSpatialIndex = true;
  off.useSpatialIndex = false;
  const auto a = extract::extractCell(c, on);
  const auto b = extract::extractCell(c, off);
  std::string why;
  EXPECT_TRUE(extract::netlistsEquivalent(a, b, &why)) << why;
  EXPECT_EQ(a.netCount, b.netCount);
}

TEST(ExtractPoly, PolygonJoinsThroughContact) {
  // Polygon metal over a contact over rect poly: one net across layers.
  cell::Cell c("via");
  c.addRect(Layer::Poly, Rect{0, 0, lambda(10), lambda(2)});
  c.addRect(Layer::Contact, Rect{lambda(4), 0, lambda(6), lambda(2)});
  c.addPolygon(Layer::Metal,
               ring({{lambda(4), 0}, {lambda(6), 0}, {lambda(6), lambda(20)},
                     {lambda(4), lambda(20)}}));
  extract::ExtractOptions eo;
  eo.labelFromBristles = false;
  EXPECT_EQ(extract::extractCell(c, eo).netCount, 1u);
}

// ---------------------------------------------------------------------------
// Hierarchical stitch pruning (satellite: bbox-abutment gating).

TEST(ExtractHier, PrunedStitchMatchesFlat) {
  cell::CellLibrary lib;
  // Leaf with a full-width metal strip (connects on horizontal abutment)
  // and interior-only poly (never reaches the seam).
  cell::Cell* leaf = lib.create("prune_leaf");
  leaf->setBoundary(Rect{0, 0, lambda(20), lambda(20)});
  leaf->addRect(Layer::Metal, Rect{0, lambda(15), lambda(20), lambda(18)});
  leaf->addRect(Layer::Poly, Rect{lambda(4), lambda(4), lambda(16), lambda(6)});
  cell::Cell* top = lib.create("prune_top");
  top->setBoundary(Rect{0, 0, lambda(60), lambda(40)});
  // Row of three abutting instances: metal strips chain into one net.
  for (int i = 0; i < 3; ++i) {
    top->addInstance(leaf, geom::Transform::translate({lambda(20) * i, 0}));
  }
  // Second row abuts the first along y: the seam has NO touching
  // geometry (metal sits at y 15..18 within each cell), so those pairs
  // are exactly the ones the pruning skips.
  for (int i = 0; i < 3; ++i) {
    top->addInstance(leaf, geom::Transform::translate({lambda(20) * i, lambda(20)}));
  }
  extract::ExtractOptions flatO, hierO;
  flatO.labelFromBristles = hierO.labelFromBristles = false;
  hierO.hierarchical = true;
  const auto flat = extract::extractCell(*top, flatO);
  const auto hier = extract::extractCell(*top, hierO);
  std::string why;
  EXPECT_TRUE(extract::netlistsEquivalent(flat, hier, &why)) << why;
  EXPECT_EQ(flat.netCount, hier.netCount);
}

TEST(ExtractHier, ViaAtSeamStillStitches) {
  cell::CellLibrary lib;
  // Left cell: poly reaching its right edge. Right cell: diffusion
  // reaching its left edge, plus a buried contact ON the seam. The only
  // cross-source join is through the via — the prune must keep it.
  cell::Cell* lc = lib.create("seam_l");
  lc->setBoundary(Rect{0, 0, lambda(10), lambda(10)});
  lc->addRect(Layer::Poly, Rect{lambda(2), lambda(4), lambda(10), lambda(6)});
  cell::Cell* rc = lib.create("seam_r");
  rc->setBoundary(Rect{0, 0, lambda(10), lambda(10)});
  rc->addRect(Layer::Diffusion, Rect{0, lambda(4), lambda(8), lambda(6)});
  rc->addRect(Layer::Buried, Rect{0, lambda(4), lambda(2), lambda(6)});
  cell::Cell* top = lib.create("seam_top");
  top->setBoundary(Rect{0, 0, lambda(20), lambda(10)});
  top->addInstance(lc, geom::Transform::translate({0, 0}));
  top->addInstance(rc, geom::Transform::translate({lambda(10), 0}));
  extract::ExtractOptions flatO, hierO;
  flatO.labelFromBristles = hierO.labelFromBristles = false;
  hierO.hierarchical = true;
  const auto flat = extract::extractCell(*top, flatO);
  const auto hier = extract::extractCell(*top, hierO);
  std::string why;
  EXPECT_TRUE(extract::netlistsEquivalent(flat, hier, &why)) << why;
}

// ---------------------------------------------------------------------------
// CIF import validation.

TEST(CifPoly, SelfIntersectingPolygonRejected) {
  cell::CellLibrary lib;
  const auto res =
      layout::parseCif("DS 1 1 1; L NM; P 0 0 10 10 10 0 0 10; DF; E", lib);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("self-intersecting"), std::string::npos);
}

TEST(CifPoly, DegeneratePolygonRejected) {
  cell::CellLibrary lib;
  const auto res = layout::parseCif("DS 1 1 1; L NM; P 0 0 10 0 5 0; DF; E", lib);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("degenerate"), std::string::npos);
}

TEST(CifPoly, DuplicateAndCollinearVerticesCollapsed) {
  cell::CellLibrary lib;
  const auto res = layout::parseCif(
      "DS 1 1 1; L NM; P 0 0 5 0 5 0 10 0 10 10 0 10; DF; E", lib);
  ASSERT_TRUE(res.ok) << res.error;
  const cell::FlatLayout flat = cell::flatten(*res.top);
  ASSERT_EQ(flat.polygons.size(), 1u);
  EXPECT_EQ(flat.polygons[0].second.pts.size(), 4u);
}

// ---------------------------------------------------------------------------
// Round trips and the GDS vertex-limit split.

TEST(RoundTrip, PolygonSurvivesCifCycle) {
  cell::CellLibrary lib;
  const Polygon l = ring({{0, 0}, {80, 0}, {80, 40}, {40, 40}, {40, 80}, {0, 80}});
  cell::Cell* c = lib.create("rt");
  c->addPolygon(Layer::Metal, l);
  const std::string cif = layout::writeCif(*c);
  cell::CellLibrary lib2;
  const auto back = layout::parseCif(cif, lib2);
  ASSERT_TRUE(back.ok) << back.error;
  const cell::FlatLayout flat = cell::flatten(*back.top);
  ASSERT_EQ(flat.polygons.size(), 1u);
  EXPECT_EQ(flat.polygons[0].second.pts, l.pts);
}

TEST(RoundTrip, PolygonCifToGds) {
  cell::CellLibrary lib;
  const auto res = layout::parseCif(
      "DS 1 1 1; 9 rt; L NM; P 0 0 80 0 80 40 40 40 40 80 0 80; DF; E", lib);
  ASSERT_TRUE(res.ok) << res.error;
  const auto bytes = layout::writeGds(*res.top);
  const layout::GdsStats st = layout::gdsStats(bytes);
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.boundaries, 1u);
}

TEST(GdsLimit, HugeBoundarySplitBelowVertexCap) {
  // A rectilinear comb with ~3 * kTeeth + 1 vertices past the GDSII
  // 8191-point XY cap: the writer must split it into several BOUNDARY
  // records instead of emitting an out-of-spec monster (or asserting).
  constexpr int kTeeth = 2800;  // ~11k vertices
  Polygon comb;
  for (int i = 0; i < kTeeth; ++i) {
    const Coord x = 4 * i;
    comb.pts.push_back({x, 0});
    comb.pts.push_back({x, 20});
    comb.pts.push_back({x + 2, 20});
    comb.pts.push_back({x + 2, 0});
  }
  comb.pts.push_back({4 * kTeeth, 0});
  comb.pts.push_back({4 * kTeeth, -10});
  comb.pts.push_back({0, -10});
  ASSERT_GT(comb.pts.size(), 8191u);
  cell::CellLibrary lib;
  cell::Cell* c = lib.create("huge");
  c->addPolygon(Layer::Metal, comb);
  const auto bytes = layout::writeGds(*c);
  const layout::GdsStats st = layout::gdsStats(bytes);
  EXPECT_TRUE(st.wellFormed);
  EXPECT_GE(st.boundaries, 2u);
  // Area is conserved across the split: decompose what went in, and
  // compare against the pieces' combined vertex-count sanity instead of
  // re-parsing XY records (gdsStats is a record walk, not a reader) —
  // the split path runs through clipToRect, whose exactness the clip
  // tests above pin down.
}

TEST(GdsLimit, SmallPolygonNotSplit) {
  cell::CellLibrary lib;
  cell::Cell* c = lib.create("small");
  c->addPolygon(Layer::Metal, ring({{0, 0}, {10, 0}, {10, 10}, {0, 10}}));
  const layout::GdsStats st = layout::gdsStats(layout::writeGds(*c));
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.boundaries, 1u);
}

}  // namespace
}  // namespace bb
