// icl::DiagnosticList ordering and merge semantics — the contract the
// lint integration leans on: emission order is never reordered, append
// is a stable concatenation, and severity counts match the entries.

#include "icl/diagnostics.hpp"

#include <gtest/gtest.h>

using namespace bb::icl;

TEST(Diagnostics, EmissionOrderIsPreservedAcrossSeverities) {
  DiagnosticList d;
  d.note({1, 1}, "first");
  d.error({2, 1}, "second");
  d.warning({3, 1}, "third");
  d.note({4, 1}, "fourth");
  ASSERT_EQ(d.all().size(), 4u);
  EXPECT_EQ(d.all()[0].message, "first");
  EXPECT_EQ(d.all()[1].message, "second");
  EXPECT_EQ(d.all()[2].message, "third");
  EXPECT_EQ(d.all()[3].message, "fourth");
  // Errors do not float to the front.
  EXPECT_EQ(d.all()[0].severity, Severity::Note);
  EXPECT_EQ(d.all()[1].severity, Severity::Error);
}

TEST(Diagnostics, AddAppendsPrebuiltEntries) {
  DiagnosticList d;
  d.warning({5, 2}, "compile warning");
  Diagnostic lintFinding;
  lintFinding.severity = Severity::Warning;
  lintFinding.loc = {};
  lintFinding.message = "[erc-floating-gate] chip/net#0: gate drives nothing";
  d.add(lintFinding);
  ASSERT_EQ(d.all().size(), 2u);
  EXPECT_EQ(d.all()[1].message, lintFinding.message);
  EXPECT_EQ(d.all()[1].loc.line, 0);  // "no location" survives verbatim
}

TEST(Diagnostics, AppendIsStableConcatenation) {
  DiagnosticList compile;
  compile.error({1, 1}, "c1");
  compile.note({2, 1}, "c2");
  DiagnosticList lint;
  lint.warning({0, 0}, "l1");
  lint.warning({0, 0}, "l2");
  compile.append(lint);
  ASSERT_EQ(compile.all().size(), 4u);
  EXPECT_EQ(compile.all()[0].message, "c1");
  EXPECT_EQ(compile.all()[1].message, "c2");
  EXPECT_EQ(compile.all()[2].message, "l1");
  EXPECT_EQ(compile.all()[3].message, "l2");
  // The source list is untouched.
  EXPECT_EQ(lint.all().size(), 2u);
}

TEST(Diagnostics, AppendEmptyAndAppendToEmpty) {
  DiagnosticList a;
  DiagnosticList b;
  b.error({1, 1}, "only");
  a.append(b);
  ASSERT_EQ(a.all().size(), 1u);
  a.append(DiagnosticList{});
  EXPECT_EQ(a.all().size(), 1u);
}

TEST(Diagnostics, CountAndHasErrors) {
  DiagnosticList d;
  EXPECT_FALSE(d.hasErrors());
  EXPECT_EQ(d.count(Severity::Error), 0u);
  d.warning({1, 1}, "w");
  d.note({1, 2}, "n");
  d.note({1, 3}, "n2");
  EXPECT_FALSE(d.hasErrors());
  EXPECT_EQ(d.count(Severity::Warning), 1u);
  EXPECT_EQ(d.count(Severity::Note), 2u);
  d.error({2, 1}, "e");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.count(Severity::Error), 1u);

  DiagnosticList more;
  more.error({3, 1}, "e2");
  d.append(more);
  EXPECT_EQ(d.count(Severity::Error), 2u);

  d.clear();
  EXPECT_FALSE(d.hasErrors());
  EXPECT_EQ(d.all().size(), 0u);
}

TEST(Diagnostics, ToStringListsEveryEntryInOrder) {
  DiagnosticList d;
  d.error({1, 2}, "alpha");
  d.warning({3, 4}, "beta");
  const std::string s = d.toString();
  const auto a = s.find("alpha");
  const auto b = s.find("beta");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
}
