/// DRC engine tests: rule detection on crafted violations, and the
/// paper's per-cell checking discipline applied to every generated cell
/// ("design rule checking [is] performed on individual cells as the
/// cells are designed, rather than on fully instantiated artwork").

#include "core/session.hpp"
#include "core/samples.hpp"
#include "cell/stretch.hpp"
#include "drc/drc.hpp"
#include "elements/slicekit.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

using drc::checkCell;
using drc::DrcOptions;
using geom::lambda;
using geom::Rect;
using tech::Layer;
using tech::meadConwayRules;

TEST(Drc, CleanRectPasses) {
  cell::Cell c("ok");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  EXPECT_TRUE(checkCell(c, meadConwayRules()).clean());
}

TEST(Drc, ThinMetalFlagged) {
  cell::Cell c("thin");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(2)});  // min is 3L
  const auto rep = checkCell(c, meadConwayRules());
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "W.metal.3");
}

TEST(Drc, ThinRectInsideWideRegionNotFlagged) {
  cell::Cell c("covered");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(20), lambda(8)});
  c.addRect(Layer::Metal, Rect{lambda(2), lambda(2), lambda(6), lambda(3)});  // sliver inside
  EXPECT_TRUE(checkCell(c, meadConwayRules()).clean());
}

TEST(Drc, MetalSpacingFlagged) {
  cell::Cell c("space");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  c.addRect(Layer::Metal, Rect{0, lambda(5), lambda(10), lambda(8)});  // gap 2L < 3L
  DrcOptions o;
  o.boundaryConditions = false;  // both rects touch the implicit boundary
  const auto rep = checkCell(c, meadConwayRules(), o);
  ASSERT_FALSE(rep.clean());
  EXPECT_EQ(rep.violations[0].rule, "S.metal.metal.3");
}

TEST(Drc, TouchingRectsAreOneFeature) {
  cell::Cell c("touch");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  c.addRect(Layer::Metal, Rect{lambda(10), 0, lambda(20), lambda(3)});
  EXPECT_TRUE(checkCell(c, meadConwayRules()).clean());
}

TEST(Drc, PolyDiffSpacingFlagged) {
  cell::Cell c("pd");
  c.addRect(Layer::Poly, Rect{0, 0, lambda(10), lambda(2)});
  c.addRect(Layer::Diffusion, Rect{0, lambda(2) + 2, lambda(10), lambda(5)});  // gap 0.5L
  DrcOptions o;
  o.boundaryConditions = false;
  const auto rep = checkCell(c, meadConwayRules(), o);
  ASSERT_FALSE(rep.clean());
  EXPECT_EQ(rep.violations[0].rule, "S.poly.diff.1");
}

TEST(Drc, GateWithoutExtensionsFlagged) {
  cell::Cell c("badgate");
  // Poly exactly as wide as the diffusion: no 2L overhang.
  c.addRect(Layer::Diffusion, Rect{0, 0, lambda(2), lambda(10)});
  c.addRect(Layer::Poly, Rect{0, lambda(4), lambda(2), lambda(6)});
  const auto rep = checkCell(c, meadConwayRules());
  bool found = false;
  for (const auto& v : rep.violations) found |= v.rule == "T.gate.ext";
  EXPECT_TRUE(found);
}

TEST(Drc, ProperTransistorPasses) {
  cell::Cell c("goodgate");
  c.addRect(Layer::Diffusion, Rect{lambda(2), 0, lambda(4), lambda(10)});
  c.addRect(Layer::Poly, Rect{0, lambda(4), lambda(6), lambda(6)});
  EXPECT_TRUE(checkCell(c, meadConwayRules()).clean());
}

TEST(Drc, NakedContactCutFlagged) {
  cell::Cell c("cut");
  c.addRect(Layer::Contact, Rect{0, 0, lambda(2), lambda(2)});
  const auto rep = checkCell(c, meadConwayRules());
  bool found = false;
  for (const auto& v : rep.violations) found |= v.rule == "C.surround.1";
  EXPECT_TRUE(found);
}

TEST(Drc, ProperContactPasses) {
  cell::Cell c("goodcut");
  c.addContact({lambda(2), lambda(2)}, Layer::Diffusion, Layer::Metal);
  EXPECT_TRUE(checkCell(c, meadConwayRules()).clean());
}

// --- the paper's per-cell discipline on the generated cells -------------

class KitDrc : public ::testing::Test {
 protected:
  /// Check every cell of a compiled chip individually, except the chip
  /// top (whose pad-ring wires route over the hierarchy — checked
  /// separately) — this is the hierarchical DRC the paper advocates.
  static std::string checkLibrary(const core::CompiledChip& chip) {
    std::string problems;
    for (const cell::Cell* c : chip.lib.all()) {
      if (c == chip.top) continue;
      const auto rep = checkCell(*c, meadConwayRules());
      if (!rep.clean()) {
        problems += "cell '" + c->name() + "': " + rep.summary() + "\n";
      }
    }
    return problems;
  }
};

TEST_F(KitDrc, SmallChipCellsClean) {
  auto compiled = core::compileChip(core::samples::smallChip(4));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  auto chip = std::move(*compiled);
  EXPECT_EQ(checkLibrary(*chip), "");
}

TEST_F(KitDrc, SegmentedChipCellsClean) {
  auto compiled = core::compileChip(core::samples::segmentedChip(4));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  auto chip = std::move(*compiled);
  EXPECT_EQ(checkLibrary(*chip), "");
}

TEST_F(KitDrc, StretchedCellsStayClean) {
  // The core property behind "a painless operation": stretching a clean
  // cell along its declared stretch lines cannot create violations.
  auto compiled = core::compileChip(core::samples::smallChip(2));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  auto chip = std::move(*compiled);
  for (const cell::Cell* c : chip->lib.all()) {
    if (c->stretchLines().empty()) continue;
    if (!checkCell(*c, meadConwayRules()).clean()) continue;  // skip already-dirty
    for (const cell::StretchLine& sl : c->stretchLines()) {
      cell::Cell s = cell::stretched(*c, sl.axis, sl.at, lambda(20));
      EXPECT_TRUE(checkCell(s, meadConwayRules()).clean())
          << "stretching '" << c->name() << "' at line '" << sl.name << "' broke rules";
    }
  }
}

}  // namespace
}  // namespace bb
