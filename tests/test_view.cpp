/// The windowed-emission layer: layout::View tile streaming, the golden
/// equivalence suite (full emission vs window == bbox emission must be
/// byte-identical for cif/gds/svg, merged mode area-identical to
/// unmerged), polygon window filtering, XML escaping, and the
/// EmitterOptions plumbing through the registry.

#include "core/samples.hpp"
#include "core/session.hpp"
#include "geom/sweep.hpp"
#include "layout/cif.hpp"
#include "layout/cif_parser.hpp"
#include "layout/gds.hpp"
#include "layout/svg.hpp"
#include "layout/view.hpp"
#include "reps/emitter.hpp"
#include "reps/sticks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <tuple>

namespace bb {
namespace {

using cell::FlatLayout;
using geom::Coord;
using geom::lambda;
using geom::Rect;
using layout::View;
using layout::ViewOptions;
using tech::Layer;

/// Deterministic synthetic artwork: jittered tiles over several layers,
/// some overlapping blobs, recentered into negative space — the same
/// recipe the scaling benches use, shrunk for test time.
FlatLayout makeFlat(std::size_t n) {
  FlatLayout flat;
  const Layer layers[] = {Layer::Diffusion, Layer::Poly, Layer::Metal, Layer::Contact};
  const Coord pitch = lambda(9);
  const auto k = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const Coord shift = static_cast<Coord>(k / 2) * pitch;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  const auto jitter = [&lcg](Coord range) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<Coord>((lcg >> 33) % static_cast<std::uint64_t>(range));
  };
  std::size_t placed = 0;
  for (std::size_t j = 0; j < k && placed < n; ++j) {
    for (std::size_t i = 0; i < k && placed < n; ++i, ++placed) {
      const Coord x = static_cast<Coord>(i) * pitch - shift + jitter(pitch);
      const Coord y = static_cast<Coord>(j) * pitch - shift + jitter(pitch);
      Coord s = lambda(7) + jitter(lambda(2));
      if (placed % 7 == 3) s = lambda(12);
      flat.on(layers[placed % 4]).emplace_back(x, y, x + s, y + s);
    }
  }
  return flat;
}

std::vector<Rect> sorted(std::vector<Rect> rs) {
  std::sort(rs.begin(), rs.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.x0, a.y0, a.x1, a.y1) < std::tie(b.x0, b.y0, b.x1, b.y1);
  });
  return rs;
}

// ---------------------------------------------------------------- View core

TEST(View, DefaultWindowIsRawVectorWalk) {
  const FlatLayout flat = makeFlat(300);
  const View v{flat};
  EXPECT_EQ(v.window(), flat.bbox());
  EXPECT_EQ(v.tileCount(), 1u);
  for (Layer l : tech::kAllLayers) {
    // Same rects, same order — the property that makes full-chip
    // emission the window == bbox special case, byte for byte.
    EXPECT_EQ(v.rectsOn(l), flat.on(l)) << tech::layerName(l);
  }
}

TEST(View, ExplicitBboxWindowIdenticalToDefault) {
  const FlatLayout flat = makeFlat(300);
  ViewOptions w;
  w.window = flat.bbox();
  const View v{flat, w};
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(v.rectsOn(l), flat.on(l)) << tech::layerName(l);
  }
}

TEST(View, TiledStreamEmitsEachRectExactlyOnce) {
  const FlatLayout flat = makeFlat(400);
  ViewOptions w;
  w.tileSize = lambda(40);
  const View v{flat, w};
  ASSERT_GT(v.tileCount(), 4u);
  for (Layer l : tech::kAllLayers) {
    // Multiset equality: tile order differs from source order, but every
    // rect appears exactly once, unclipped.
    EXPECT_EQ(sorted(v.rectsOn(l)), sorted(flat.on(l))) << tech::layerName(l);
  }
  // Streaming order is deterministic: two walks agree.
  EXPECT_EQ(v.rectsOn(Layer::Metal), v.rectsOn(Layer::Metal));
}

TEST(View, ParallelTileWalkIsByteIdenticalToSequential) {
  const FlatLayout flat = makeFlat(400);
  for (const bool merge : {false, true}) {
    ViewOptions w;
    w.tileSize = lambda(40);
    w.merge = merge;
    const View v{flat, w};
    ASSERT_GT(v.tileCount(), 4u);
    for (Layer l : tech::kAllLayers) {
      // The parallel walk must stream the same (tx, ty, rects) sequence
      // as the sequential one — same tiles, same order, same contents.
      std::vector<std::tuple<std::size_t, std::size_t, std::vector<Rect>>> seq;
      std::vector<std::tuple<std::size_t, std::size_t, std::vector<Rect>>> par;
      v.forEachTile(l, [&](std::size_t tx, std::size_t ty, const std::vector<Rect>& rs) {
        seq.emplace_back(tx, ty, rs);
      });
      v.forEachTileParallel(
          l, [&](std::size_t tx, std::size_t ty, const std::vector<Rect>& rs) {
            par.emplace_back(tx, ty, rs);
          });
      EXPECT_EQ(seq, par) << tech::layerName(l) << (merge ? " merged" : " unmerged");
    }
  }
}

TEST(View, TilePartitionCoversWindowExactly) {
  const FlatLayout flat = makeFlat(100);
  ViewOptions w;
  w.tileSize = lambda(33);  // does not divide the window evenly
  const View v{flat, w};
  std::vector<Rect> tiles;
  for (std::size_t ty = 0; ty < v.tilesY(); ++ty) {
    for (std::size_t tx = 0; tx < v.tilesX(); ++tx) tiles.push_back(v.tileRect(tx, ty));
  }
  Coord area = 0;
  for (const Rect& t : tiles) area += t.area();
  EXPECT_EQ(area, v.window().area());
  EXPECT_EQ(geom::unionArea(tiles), v.window().area());
}

TEST(View, WindowSelectsExactlyTouchingRects) {
  const FlatLayout flat = makeFlat(400);
  const Rect bb = flat.bbox();
  const Rect win{bb.x0, bb.y0, bb.x0 + bb.width() / 3, bb.y0 + bb.height() / 3};
  ViewOptions w;
  w.window = win;
  const View v{flat, w};
  for (Layer l : tech::kAllLayers) {
    std::vector<Rect> expect;
    for (const Rect& r : flat.on(l)) {
      if (r.touches(win)) expect.push_back(r);
    }
    // Single tile: ascending source order, so plain equality holds.
    EXPECT_EQ(v.rectsOn(l), expect) << tech::layerName(l);
  }
}

TEST(View, WindowedAndTiledStillEmitsEachOnce) {
  const FlatLayout flat = makeFlat(400);
  const Rect bb = flat.bbox();
  const Rect win{bb.x0 + bb.width() / 4, bb.y0 + bb.height() / 4,
                 bb.x1 - bb.width() / 4, bb.y1 - bb.height() / 4};
  ViewOptions w;
  w.window = win;
  w.tileSize = lambda(25);
  const View v{flat, w};
  for (Layer l : tech::kAllLayers) {
    std::vector<Rect> expect;
    for (const Rect& r : flat.on(l)) {
      if (r.touches(win)) expect.push_back(r);
    }
    EXPECT_EQ(sorted(v.rectsOn(l)), sorted(expect)) << tech::layerName(l);
  }
}

TEST(View, MergedModeIsAreaIdenticalAndDisjoint) {
  const FlatLayout flat = makeFlat(400);
  for (const Coord tile : {Coord{0}, lambda(40)}) {
    ViewOptions w;
    w.merge = true;
    w.tileSize = tile;
    const View v{flat, w};
    for (Layer l : tech::kAllLayers) {
      const std::vector<Rect> merged = v.rectsOn(l);
      Coord sum = 0;
      for (const Rect& r : merged) sum += r.area();
      // Disjoint: areas sum to the union area; identical coverage: that
      // union area equals the raw layer's union area.
      EXPECT_EQ(sum, geom::sweep::unionArea(merged)) << tech::layerName(l);
      EXPECT_EQ(geom::sweep::unionArea(merged), geom::sweep::unionArea(flat.on(l)))
          << "tile " << tile << " layer " << tech::layerName(l);
      EXPECT_EQ(merged.empty(), flat.on(l).empty());
    }
  }
}

TEST(View, MergedWindowedCoversExactlyTheWindowedArtwork) {
  const FlatLayout flat = makeFlat(400);
  const Rect bb = flat.bbox();
  const Rect win{bb.x0, bb.y0, bb.x0 + bb.width() / 2, bb.y0 + bb.height() / 2};
  ViewOptions w;
  w.window = win;
  w.merge = true;
  w.tileSize = lambda(30);
  const View v{flat, w};
  for (Layer l : tech::kAllLayers) {
    const std::vector<Rect> merged = v.rectsOn(l);
    std::vector<Rect> clipped;
    for (const Rect& r : flat.on(l)) {
      if (const auto c = r.intersectWith(win)) clipped.push_back(*c);
    }
    EXPECT_EQ(geom::sweep::unionArea(merged), geom::sweep::unionArea(clipped))
        << tech::layerName(l);
    for (const Rect& r : merged) EXPECT_TRUE(win.contains(r));
  }
}

TEST(View, EmptyLayoutAndEmptyWindow) {
  const FlatLayout flat;
  const View v{flat};
  EXPECT_EQ(v.tileCount(), 1u);
  for (Layer l : tech::kAllLayers) EXPECT_TRUE(v.rectsOn(l).empty());

  const FlatLayout full = makeFlat(50);
  ViewOptions w;
  const Rect bb = full.bbox();
  w.window = Rect{bb.x1 + lambda(100), bb.y1 + lambda(100), bb.x1 + lambda(110),
                  bb.y1 + lambda(110)};  // fully off-chip
  const View off{full, w};
  for (Layer l : tech::kAllLayers) EXPECT_TRUE(off.rectsOn(l).empty());
  EXPECT_TRUE(off.polygons().empty());
}

// ----------------------------------------- golden equivalence: the writers

/// Pre-refactor reference: the raw flattened-vector walk each writer did
/// before the View existed, replicated verbatim for the byte-identity
/// assertions below.
std::string refCifFlat(const FlatLayout& flat, const layout::CifOptions& opts = {}) {
  std::ostringstream os;
  if (opts.comments) {
    os << "( Bristle Blocks silicon compiler -- CIF 2.0 mask set );\n";
    os << "( flat artwork, window " << geom::toString(flat.bbox()) << " );\n";
  }
  os << "DS 1 " << opts.scaleNum << ' ' << opts.scaleDen << ";\n";
  if (opts.symbolNames) os << "9 flat;\n";
  for (Layer l : tech::kAllLayers) {
    bool wrote = false;
    auto need = [&] {
      if (!wrote) {
        os << "L " << tech::cifName(l) << ";\n";
        wrote = true;
      }
    };
    for (const Rect& r : flat.on(l)) {
      need();
      os << "B " << r.width() << ' ' << r.height() << ' ' << r.center().x << ' '
         << r.center().y << ";\n";
    }
    for (const auto& [pl, p] : flat.polygons) {
      if (pl != l) continue;
      need();
      os << "P";
      for (geom::Point q : p.pts) os << ' ' << q.x << ' ' << q.y;
      os << ";\n";
    }
  }
  os << "DF;\nC 1;\nE\n";
  return os.str();
}

/// Pre-refactor renderSvg(flat, overlay, opts) replicated byte for byte
/// (raw per-layer loops, no View, no escaping — the inputs here contain
/// no XML-special characters so escaping is a no-op).
std::string refSvgFlat(const FlatLayout& flat, const layout::SvgOptions& opts = {}) {
  std::ostringstream os;
  const Rect bb = flat.bbox();
  const double s = opts.pixelsPerUnit;
  const double w = static_cast<double>(bb.width()) * s + 20;
  const double h = static_cast<double>(bb.height()) * s + 20;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"#f8f8f4\"/>\n";
  const auto X = [&](Coord v) { return (static_cast<double>(v - bb.x0)) * s + 10; };
  const auto Y = [&](Coord v) { return (static_cast<double>(bb.y1 - v)) * s + 10; };
  const Layer order[] = {Layer::Diffusion, Layer::Implant, Layer::Buried, Layer::Poly,
                         Layer::Contact,   Layer::Metal,   Layer::Glass};
  for (Layer l : order) {
    for (const Rect& r : flat.on(l)) {
      os << "<rect x=\"" << X(r.x0) << "\" y=\"" << Y(r.y1) << "\" width=\""
         << static_cast<double>(r.width()) * s << "\" height=\""
         << static_cast<double>(r.height()) * s << "\" fill=\"" << tech::displayColor(l)
         << "\" fill-opacity=\"" << opts.fillOpacity << "\"/>\n";
    }
  }
  for (const auto& [l, p] : flat.polygons) {
    os << "<polygon points=\"";
    for (geom::Point q : p.pts) os << X(q.x) << ',' << Y(q.y) << ' ';
    os << "\" fill=\"" << tech::displayColor(l) << "\" fill-opacity=\"" << opts.fillOpacity
       << "\"/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

/// Pre-refactor sticksOf: the raw layer-vector walk.
std::vector<reps::Stick> refSticks(const FlatLayout& flat) {
  std::vector<reps::Stick> out;
  for (Layer l : tech::kAllLayers) {
    for (const Rect& r : flat.on(l)) {
      reps::Stick s;
      s.layer = l;
      if (r.width() >= r.height()) {
        s.a = {r.x0, (r.y0 + r.y1) / 2};
        s.b = {r.x1, (r.y0 + r.y1) / 2};
      } else {
        s.a = {(r.x0 + r.x1) / 2, r.y0};
        s.b = {(r.x0 + r.x1) / 2, r.y1};
      }
      out.push_back(s);
    }
  }
  for (const auto& [l, p] : flat.polygons) {
    const Rect r = p.bbox();
    out.push_back(reps::Stick{l, {r.x0, (r.y0 + r.y1) / 2}, {r.x1, (r.y0 + r.y1) / 2}});
  }
  return out;
}

TEST(GoldenEquivalence, CifFullEqualsWindowBboxEqualsPreRefactor) {
  const FlatLayout flat = makeFlat(300);
  const std::string full = layout::writeCif(flat, ViewOptions{});
  ViewOptions w;
  w.window = flat.bbox();
  EXPECT_EQ(full, layout::writeCif(flat, w));
  EXPECT_EQ(full, refCifFlat(flat));
}

TEST(GoldenEquivalence, GdsFullEqualsWindowBbox) {
  const FlatLayout flat = makeFlat(300);
  const auto full = layout::writeGds(flat, ViewOptions{});
  ViewOptions w;
  w.window = flat.bbox();
  EXPECT_EQ(full, layout::writeGds(flat, w));
  const layout::GdsStats st = layout::gdsStats(full);
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.structures, 1u);
  EXPECT_EQ(st.boundaries, flat.totalCount());
}

TEST(GoldenEquivalence, SvgFullEqualsWindowBboxEqualsPreRefactor) {
  const FlatLayout flat = makeFlat(300);
  const std::string full = layout::renderSvg(flat, {}, {});
  layout::SvgOptions w;
  w.view.window = flat.bbox();
  EXPECT_EQ(full, layout::renderSvg(flat, {}, w));
  EXPECT_EQ(full, refSvgFlat(flat));
}

TEST(GoldenEquivalence, MergedCifIsAreaIdenticalPerLayer) {
  const FlatLayout flat = makeFlat(300);
  ViewOptions m;
  m.merge = true;
  m.tileSize = lambda(50);
  // Parse the merged CIF back and compare per-layer union areas with the
  // unmerged artwork: merging must never change the mask.
  cell::CellLibrary lib;
  const layout::CifParseResult res = layout::parseCif(layout::writeCif(flat, m), lib);
  ASSERT_TRUE(res.ok) << res.error;
  const FlatLayout back = cell::flatten(*res.top);
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(geom::sweep::unionArea(back.on(l)), geom::sweep::unionArea(flat.on(l)))
        << tech::layerName(l);
    // ...with no more boxes than the raw artwork needs.
    if (!flat.on(l).empty()) {
      EXPECT_FALSE(back.on(l).empty());
    }
  }
}

TEST(GoldenEquivalence, SticksViewPathMatchesRawWalk) {
  const FlatLayout flat = makeFlat(300);
  EXPECT_EQ(reps::sticksOf(flat), refSticks(flat));
  // Windowed sticks: only rects touching the window contribute.
  const Rect bb = flat.bbox();
  layout::ViewOptions w;
  w.window = Rect{bb.x0, bb.y0, bb.x0 + bb.width() / 4, bb.y0 + bb.height() / 4};
  const auto windowed = reps::sticksOf(flat, w);
  EXPECT_LT(windowed.size(), refSticks(flat).size());
  EXPECT_FALSE(windowed.empty());
}

// -------------------------------------------------- polygons in the window

/// A CIF deck with one polygon (only CIF import produces polygons; the
/// generators never do), plus boxes on another layer.
constexpr const char* kPolyCif =
    "DS 1 125 2; 9 polycell; L NM; P 0 0 80 0 80 80; B 8 8 200 4; DF; E";

TEST(PolygonWindow, ImportedPolygonIsNeverSilentlyDropped) {
  cell::CellLibrary lib;
  const layout::CifParseResult res = layout::parseCif(kPolyCif, lib);
  ASSERT_TRUE(res.ok) << res.error;
  const FlatLayout flat = cell::flatten(*res.top);
  ASSERT_EQ(flat.polygons.size(), 1u);

  // A window that clips the polygon (covers only its corner): the
  // default clipPolygons policy emits the window-clipped piece — still
  // never silently dropped, but no longer the whole ring.
  ViewOptions w;
  w.window = Rect{60, 60, 120, 120};
  const View v{flat, w};
  ASSERT_EQ(v.polygons().size(), 1u);
  ASSERT_EQ(v.windowPolygons().size(), 1u);
  // Every clipped vertex lies inside the window.
  for (const auto& [pl, piece] : v.windowPolygons()) {
    (void)pl;
    for (geom::Point q : piece.pts) EXPECT_TRUE(w.window->contains(q));
  }

  const std::string cif = layout::writeCif(flat, w);
  EXPECT_NE(cif.find("P "), std::string::npos);            // a piece is emitted
  EXPECT_EQ(cif.find("P 0 0 80 0 80 80;"), std::string::npos);  // ...clipped
  // The off-window box (bbox around x=200) is not emitted...
  EXPECT_EQ(cif.find("B 8 8 200 4;"), std::string::npos);

  // clipPolygons=false is the pre-clip reference: the polygon whole,
  // byte-identical to the old walk.
  ViewOptions wRef = w;
  wRef.clipPolygons = false;
  const std::string cifRef = layout::writeCif(flat, wRef);
  EXPECT_NE(cifRef.find("P 0 0 80 0 80 80;"), std::string::npos);
  EXPECT_EQ(cifRef.find("B 8 8 200 4;"), std::string::npos);

  layout::SvgOptions so;
  so.view = w;
  EXPECT_NE(layout::renderSvg(flat, {}, so).find("<polygon"), std::string::npos);

  const auto gds = layout::writeGds(flat, w);
  const layout::GdsStats st = layout::gdsStats(gds);
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.boundaries, 1u);  // the clipped piece, not the far-away box
  const layout::GdsStats stRef = layout::gdsStats(layout::writeGds(flat, wRef));
  EXPECT_TRUE(stRef.wellFormed);
  EXPECT_EQ(stRef.boundaries, 1u);  // the whole polygon in reference mode

  // A window fully away from the polygon excludes it in both modes.
  ViewOptions far;
  far.window = Rect{196, 0, 204, 8};
  EXPECT_EQ(layout::writeCif(flat, far).find("P 0 0"), std::string::npos);
  EXPECT_EQ(View(flat, far).polygons().size(), 0u);
  EXPECT_EQ(View(flat, far).windowPolygons().size(), 0u);
}

TEST(PolygonWindow, TiledEmissionEmitsSpanningPolygonExactlyOnce) {
  cell::CellLibrary lib;
  const layout::CifParseResult res = layout::parseCif(kPolyCif, lib);
  ASSERT_TRUE(res.ok) << res.error;
  const FlatLayout flat = cell::flatten(*res.top);
  ASSERT_EQ(flat.polygons.size(), 1u);

  // Tiles far smaller than the polygon's bbox: it touches many tiles,
  // but only the one holding its window-clamped lower-left corner owns
  // it, so tiled writers emit it exactly once.
  ViewOptions w;
  w.window = flat.bbox();
  w.tileSize = 16;
  const View v{flat, w};
  ASSERT_GT(v.tileCount(), 8u);
  std::size_t owned = 0;
  for (std::size_t ty = 0; ty < v.tilesY(); ++ty) {
    for (std::size_t tx = 0; tx < v.tilesX(); ++tx) {
      owned += v.polygonsOwnedBy(tx, ty).size();
    }
  }
  EXPECT_EQ(owned, 1u);

  const std::string cif = layout::writeCif(flat, w);
  std::size_t pRecords = 0;
  for (auto pos = cif.find("P 0 0"); pos != std::string::npos;
       pos = cif.find("P 0 0", pos + 1)) {
    ++pRecords;
  }
  EXPECT_EQ(pRecords, 1u);

  const auto gds = layout::writeGds(flat, w);
  const layout::GdsStats st = layout::gdsStats(gds);
  EXPECT_TRUE(st.wellFormed);
  // One BOUNDARY for the polygon plus one per rect — no tile duplicates.
  std::size_t rectCount = 0;
  for (Layer l : tech::kAllLayers) rectCount += flat.on(l).size();
  EXPECT_EQ(st.boundaries, 1u + rectCount);
}

// ----------------------------------------------------------- XML escaping

TEST(XmlEscape, EscapesMarkupCharacters) {
  EXPECT_EQ(layout::xmlEscape("a<b&\"c\">d"), "a&lt;b&amp;&quot;c&quot;&gt;d");
  EXPECT_EQ(layout::xmlEscape("plain"), "plain");
  EXPECT_EQ(layout::xmlEscape(""), "");
}

TEST(XmlEscape, PortLabelsAndTitlesAreEscapedInSvg) {
  cell::CellLibrary lib;
  cell::Cell* c = lib.create("esc");
  c->addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  cell::Bristle b;
  b.name = "out<1>&\"q\"";
  b.pos = {lambda(5), lambda(3)};
  c->addBristle(b);
  layout::SvgOptions opts;
  opts.title = "chip <X> & \"Y\"";
  const std::string svg = layout::renderSvg(*c, opts);
  EXPECT_NE(svg.find("out&lt;1&gt;&amp;&quot;q&quot;"), std::string::npos);
  EXPECT_NE(svg.find("<title>chip &lt;X&gt; &amp; &quot;Y&quot;</title>"), std::string::npos);
  // The raw label must not appear anywhere (it would be invalid XML).
  EXPECT_EQ(svg.find("out<1>"), std::string::npos);

  // The overlay-label path of the flat overload too.
  const FlatLayout flat = cell::flatten(*c);
  const std::vector<layout::SvgOverlayPoint> overlay = {
      {{0, 0}, "a<&\"b", "red\" onload=\"x"}};
  const std::string svg2 = layout::renderSvg(flat, overlay, {});
  EXPECT_NE(svg2.find("a&lt;&amp;&quot;b"), std::string::npos);
  EXPECT_EQ(svg2.find("a<&"), std::string::npos);
  // Caller-supplied colors are attribute text too.
  EXPECT_NE(svg2.find("red&quot; onload=&quot;x"), std::string::npos);
  EXPECT_EQ(svg2.find("red\" onload"), std::string::npos);

  // ...and the sticks-SVG path's title.
  const std::string ssvg = reps::sticksSvg(reps::sticksOf(flat), 0.5, "s<&>t");
  EXPECT_NE(ssvg.find("<title>s&lt;&amp;&gt;t</title>"), std::string::npos);
}

// ------------------------------------------- EmitterOptions plumbing

class EmitterWindowing : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto compiled = core::compileChip(core::samples::smallChip(4));
    ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
    chip_ = std::move(*compiled).release();
  }
  static void TearDownTestSuite() {
    delete chip_;
    chip_ = nullptr;
  }
  static core::CompiledChip* chip_;
};

core::CompiledChip* EmitterWindowing::chip_ = nullptr;

TEST_F(EmitterWindowing, DefaultOptionsAreByteIdenticalToPlainEmit) {
  const reps::EmitterRegistry& reg = reps::EmitterRegistry::global();
  for (const std::string_view name : reg.names()) {
    const reps::Emitter* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_EQ(e->emitToString(*chip_), e->emitToString(*chip_, reps::EmitterOptions{}))
        << "emitter '" << name << "' changed output for default options";
  }
}

TEST_F(EmitterWindowing, WindowedGeometryEmittersAreOutputSensitive) {
  const reps::EmitterRegistry& reg = reps::EmitterRegistry::global();
  const Rect bb = chip_->flatTop().bbox();
  reps::EmitterOptions small;
  small.window = Rect{bb.x0, bb.y0, bb.x0 + bb.width() / 8, bb.y0 + bb.height() / 8};
  for (const char* name : {"cif", "gds", "svg"}) {
    const reps::Emitter* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    const std::string full = e->emitToString(*chip_, reps::EmitterOptions{});
    const std::string windowed = e->emitToString(*chip_, small);
    EXPECT_FALSE(windowed.empty()) << name;
    EXPECT_LT(windowed.size(), full.size()) << name;
  }
  // Windowed SVG keeps the non-geometry furniture of the plain render
  // (boundary outline; in-window markers), not just the mask rects.
  EXPECT_NE(reg.find("svg")->emitToString(*chip_, small).find("stroke-dasharray"),
            std::string::npos);
  // sticks-svg windows in core coordinates.
  const Rect cb = chip_->flatCore().bbox();
  reps::EmitterOptions coreWin;
  coreWin.window = Rect{cb.x0, cb.y0, cb.x0 + cb.width() / 4, cb.y0 + cb.height() / 4};
  const reps::Emitter* sticks = reg.find("sticks-svg");
  ASSERT_NE(sticks, nullptr);
  EXPECT_LT(sticks->emitToString(*chip_, coreWin).size(),
            sticks->emitToString(*chip_).size());
}

TEST_F(EmitterWindowing, MergedEmissionPreservesMaskArea) {
  reps::EmitterOptions merged;
  merged.mergeTiles = true;
  merged.tileSize = lambda(100);
  std::ostringstream os;
  ASSERT_TRUE(reps::EmitterRegistry::global().emit(*chip_, "cif", os, merged));
  cell::CellLibrary lib;
  const layout::CifParseResult res = layout::parseCif(os.str(), lib);
  ASSERT_TRUE(res.ok) << res.error;
  const FlatLayout back = cell::flatten(*res.top);
  const FlatLayout& raw = chip_->flatTop();
  for (Layer l : tech::kAllLayers) {
    EXPECT_EQ(geom::sweep::unionArea(back.on(l)), geom::sweep::unionArea(raw.on(l)))
        << tech::layerName(l);
  }
}

TEST_F(EmitterWindowing, NonGeometryEmittersIgnoreWindowing) {
  const reps::EmitterRegistry& reg = reps::EmitterRegistry::global();
  reps::EmitterOptions w;
  w.window = Rect{0, 0, lambda(10), lambda(10)};
  for (const char* name : {"spice", "text", "block", "logic"}) {
    const reps::Emitter* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_EQ(e->emitToString(*chip_), e->emitToString(*chip_, w)) << name;
  }
}

TEST_F(EmitterWindowing, CustomEmitterWithoutOverrideFallsBack) {
  class Plain final : public reps::Emitter {
   public:
    [[nodiscard]] std::string_view name() const noexcept override { return "plain"; }
    [[nodiscard]] std::string_view fileExtension() const noexcept override { return "txt"; }
    [[nodiscard]] std::string_view description() const noexcept override { return "test"; }
    void emit(const core::CompiledChip&, std::ostream& os) const override { os << "full"; }
  };
  reps::EmitterRegistry local;
  local.add(std::make_unique<Plain>());
  std::ostringstream os;
  reps::EmitterOptions w;
  w.window = Rect{0, 0, 1, 1};
  ASSERT_TRUE(local.emit(*chip_, "plain", os, w));
  EXPECT_EQ(os.str(), "full");
}

TEST(SessionStreaming, ViewportEmissionFromCompileSessionResult) {
  // The advertised workflow: drive the staged pipeline, then stream a
  // viewport of the result through any registered emitter.
  core::CompileSession session{core::samples::smallChip(4)};
  auto result = session.run();
  ASSERT_TRUE(result) << result.diagnostics().toString();
  const core::CompiledChip& chip = **result;
  const Rect bb = chip.flatTop().bbox();

  reps::EmitterOptions viewport;
  viewport.window = Rect{bb.x0, bb.y0, bb.x0 + bb.width() / 4, bb.y1};
  viewport.tileSize = lambda(200);
  std::ostringstream os;
  ASSERT_TRUE(reps::EmitterRegistry::global().emit(chip, "svg", os, viewport));
  EXPECT_NE(os.str().find("<svg"), std::string::npos);
  EXPECT_NE(os.str().find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace bb
