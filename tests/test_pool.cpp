/// The persistent thread-pool scheduler: parallelFor equivalence with a
/// serial loop, exception capture-and-rethrow, nested submission (no
/// deadlock, no extra threads), grain/width edge cases, TaskGroup stage
/// chaining, the runWorkQueue shim's semantics, and the pipelined
/// BatchCompiler — including equality with the whole-job schedule and a
/// stress mix of batch + threaded DRC + service on the one shared pool.

#include "core/batch.hpp"
#include "core/pool.hpp"
#include "core/samples.hpp"
#include "core/workqueue.hpp"
#include "drc/drc.hpp"
#include "reps/emitter.hpp"
#include "svc/service.hpp"
#include "tech/rules.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace bb {
namespace {

std::string emitCif(const core::CompiledChip& chip) {
  std::ostringstream os;
  EXPECT_TRUE(reps::EmitterRegistry::global().emit(chip, "cif", os, {}));
  return std::move(os).str();
}

TEST(ThreadPool, ParallelForMatchesSerialLoop) {
  core::ThreadPool pool(3);
  constexpr std::size_t kJobs = 1000;
  std::vector<int> out(kJobs, 0);
  pool.parallelFor(kJobs, 7, [&](std::size_t i) { out[i] = static_cast<int>(i) * 2; });
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) * 2) << i;
  }
}

TEST(ThreadPool, LazyStartSpawnsOnceAndOnlyWhenUsed) {
  core::ThreadPool pool(2);
  EXPECT_EQ(pool.threadsSpawned(), 0u);  // untouched pool: zero threads
  std::atomic<int> sum{0};
  pool.parallelFor(16, 1, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 120);
  EXPECT_EQ(pool.threadsSpawned(), 2u);
  pool.parallelFor(16, 1, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(pool.threadsSpawned(), 2u);  // warm pool never spawns again
  EXPECT_GT(pool.tasksExecuted(), 0u);
}

TEST(ThreadPool, FirstExceptionIsRethrownAndThePoolStaysUsable) {
  core::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(100, 1,
                       [&](std::size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing loop and keeps scheduling correctly.
  std::atomic<int> sum{0};
  pool.parallelFor(50, 4, [&](std::size_t) { ++sum; });
  EXPECT_EQ(sum.load(), 50);
}

TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlockOrExtraThreads) {
  core::ThreadPool pool(3);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> sums(kOuter);
  pool.parallelFor(kOuter, 1, [&](std::size_t o) {
    pool.parallelFor(kInner, 8,
                     [&](std::size_t i) { sums[o] += static_cast<int>(i); });
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    ASSERT_EQ(sums[o].load(), (kInner - 1) * kInner / 2) << o;
  }
  // Nesting draws on the one budget — it never spawned more workers.
  EXPECT_EQ(pool.threadsSpawned(), 3u);
}

TEST(ThreadPool, EdgeCases) {
  core::ThreadPool pool(2);
  // Zero jobs: nothing runs, nothing hangs.
  pool.parallelFor(0, 1, [](std::size_t) { FAIL() << "ran a job"; });

  // One job / grain larger than the index space: inline on the caller.
  std::atomic<int> count{0};
  pool.parallelFor(1, 1, [&](std::size_t) { ++count; });
  pool.parallelFor(5, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(pool.threadsSpawned(), 0u);  // single-chunk loops stay inline

  // Fewer jobs than workers: every index still runs exactly once.
  std::vector<int> hits(2, 0);
  pool.parallelFor(2, 1, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);

  // maxParallel == 1 degenerates to the serial loop (no tasks enqueued).
  const std::uint64_t tasksBefore = pool.tasksExecuted();
  pool.parallelFor(100, 1, [&](std::size_t) {}, 1);
  EXPECT_EQ(pool.tasksExecuted(), tasksBefore);
}

TEST(ThreadPool, RunWorkQueueShimRethrowsInsteadOfTerminating) {
  // The original scheduler std::terminate'd on a throwing job; the shim
  // must surface the exception on the caller.
  EXPECT_THROW(core::runWorkQueue(
                   8, 4,
                   [](std::size_t i) {
                     if (i % 2 == 1) throw std::runtime_error("odd job");
                   }),
               std::runtime_error);
  std::atomic<int> sum{0};
  core::runWorkQueue(32, 4, [&](std::size_t) { ++sum; });
  EXPECT_EQ(sum.load(), 32);
}

TEST(TaskGroup, TasksMaySubmitFollowUpTasks) {
  core::ThreadPool pool(2);
  core::TaskGroup group(pool);
  std::atomic<int> stages{0};
  // A chain of follow-up tasks, the shape of a pipelined compile.
  std::function<void(int)> stage = [&](int depth) {
    ++stages;
    if (depth < 5) group.run([&, depth] { stage(depth + 1); });
  };
  for (int j = 0; j < 4; ++j) group.run([&] { stage(0); });
  group.wait();
  EXPECT_EQ(stages.load(), 4 * 6);

  // Reusable after wait(), and wait() rethrows a task's exception.
  group.run([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(BatchPipelined, MatchesWholeJobAndSequentialOutputs) {
  std::vector<icl::ChipDesc> descs;
  descs.push_back(core::samples::smallChip(4));
  descs.push_back(core::samples::largeChip(8, 4));
  descs.push_back(core::samples::segmentedChip(8));
  descs.push_back(core::samples::smallChip(8));

  const auto pipelined =
      core::BatchCompiler({}, 4, core::BatchCompiler::Mode::Pipelined)
          .compileAll(descs);
  const auto whole = core::BatchCompiler({}, 4, core::BatchCompiler::Mode::WholeJob)
                         .compileAll(descs);
  ASSERT_EQ(pipelined.size(), descs.size());
  ASSERT_EQ(whole.size(), descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    ASSERT_TRUE(pipelined[i].ok()) << pipelined[i].diags.toString();
    ASSERT_TRUE(whole[i].ok()) << whole[i].diags.toString();
    // Same chip, byte for byte, regardless of schedule — and both match
    // a plain sequential compile of the same description.
    EXPECT_EQ(emitCif(*pipelined[i].chip), emitCif(*whole[i].chip)) << i;
    auto ref = core::compileChip(descs[i]);
    ASSERT_TRUE(ref);
    EXPECT_EQ(emitCif(*pipelined[i].chip), emitCif(**ref)) << i;
    EXPECT_GT(pipelined[i].finishedAfter.count(), 0) << i;
    EXPECT_GE(pipelined[i].finishedAfter.count(), pipelined[i].elapsed.count()) << i;
  }
}

TEST(BatchPipelined, FailedJobDoesNotAbortAndOrderIsKept) {
  std::vector<core::BatchJob> jobs;
  jobs.push_back({"good", core::samples::smallChip(4), {}});
  jobs.push_back({"bad", "chip broken; data width 8;", {}});
  jobs.push_back({"also-good", core::samples::segmentedChip(4), {}});
  const auto results =
      core::BatchCompiler({}, 2, core::BatchCompiler::Mode::Pipelined)
          .compileAll(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[1].diags.hasErrors());
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(results[1].name, "bad");
}

TEST(BatchPipelined, WithDrcChecksEveryChipAgainstTheSharedDeck) {
  std::vector<icl::ChipDesc> descs;
  descs.push_back(core::samples::smallChip(4));
  descs.push_back(core::samples::segmentedChip(8));
  descs.push_back(core::samples::smallChip(8));

  for (const auto mode : {core::BatchCompiler::Mode::Pipelined,
                          core::BatchCompiler::Mode::WholeJob}) {
    const auto results = core::BatchCompiler({}, 2, mode)
                             .withDrc(tech::meadConwayRules())
                             .compileAll(descs);
    ASSERT_EQ(results.size(), descs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].diags.toString();
      ASSERT_TRUE(results[i].drc.has_value()) << i;
      EXPECT_GT(results[i].drc->shapesChecked, 0u) << i;
      // Whatever the schedule, the report matches a direct checkFlat.
      const auto ref = drc::checkFlat(results[i].chip->flatTop(),
                                      results[i].chip->top->boundary(),
                                      tech::meadConwayRules());
      EXPECT_EQ(results[i].drc->violations.size(), ref.violations.size()) << i;
    }
  }
}

TEST(DeckChecker, ReusableAcrossChipsAndWidths) {
  auto chip = core::compileChip(core::samples::smallChip(4));
  ASSERT_TRUE(chip);
  const drc::DeckChecker checker(tech::meadConwayRules(), {});
  const auto serial = checker.check((*chip)->flatTop(), (*chip)->top->boundary());
  const auto wide = checker.check((*chip)->flatTop(), (*chip)->top->boundary(), 0);
  EXPECT_EQ(serial.violations.size(), wide.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    // Violations keep deck order regardless of width.
    EXPECT_EQ(serial.violations[i].rule, wide.violations[i].rule) << i;
  }
}

TEST(PoolStress, BatchDrcAndServiceShareOnePoolWithoutDeadlock) {
  // Everything at once on the global pool: a pipelined batch with DRC
  // fan-out, a service batch with duplicate keys, and raw nested
  // parallelFor — the oversubscription scenario the shared budget is
  // supposed to make safe.
  std::atomic<bool> ok{true};
  std::thread svcThread([&] {
    svc::CompileService service({.threads = 2});
    std::vector<svc::CompileRequest> reqs;
    for (int i = 0; i < 6; ++i) {
      reqs.push_back(svc::CompileRequest::ofDesc(core::samples::smallChip(4)));
    }
    const auto out = service.compileAll(std::move(reqs));
    for (const auto& r : out) {
      if (!r.ok()) ok = false;
    }
    const auto stats = service.stats();
    if (stats.compilesExecuted != 1) ok = false;  // single-flighted
  });

  drc::DrcOptions dopts;
  dopts.threads = 0;  // full pool width, nested inside batch jobs
  const auto results = core::BatchCompiler({}, 0)
                           .withDrc(tech::meadConwayRules(), dopts)
                           .compileAll(std::vector<icl::ChipDesc>{
                               core::samples::smallChip(4),
                               core::samples::segmentedChip(8),
                               core::samples::largeChip(8, 4),
                               core::samples::smallChip(8),
                           });
  svcThread.join();
  EXPECT_TRUE(ok.load());
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.diags.toString();
    EXPECT_TRUE(r.drc.has_value());
  }
}

}  // namespace
}  // namespace bb
