/// The seven representations: every compiled chip must produce all of
/// them, and each must reflect the chip it came from.

#include "core/session.hpp"
#include "core/samples.hpp"
#include "reps/reps.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

class Reps : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto compiled = core::compileChip(core::samples::smallChip(4));
    ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
    chip_ = std::move(*compiled).release();
    rs_ = new reps::RepresentationSet(reps::generateAll(*chip_));
  }
  static void TearDownTestSuite() {
    delete rs_;
    delete chip_;
  }
  static core::CompiledChip* chip_;
  static reps::RepresentationSet* rs_;
};

core::CompiledChip* Reps::chip_ = nullptr;
reps::RepresentationSet* Reps::rs_ = nullptr;

TEST_F(Reps, AllSevenPopulated) {
  EXPECT_EQ(rs_->populatedCount(), 7);
}

TEST_F(Reps, LayoutIsValidCifAndGds) {
  EXPECT_NE(rs_->cif.find("DS 1"), std::string::npos);
  EXPECT_NE(rs_->cif.find("E\n"), std::string::npos);
  EXPECT_GT(rs_->gds.size(), 100u);
  EXPECT_NE(rs_->layoutSvg.find("<svg"), std::string::npos);
}

TEST_F(Reps, SticksReduceToLines) {
  EXPECT_NE(rs_->sticksText.find("sticks diagram"), std::string::npos);
  EXPECT_NE(rs_->sticksSvg.find("<line"), std::string::npos);
}

TEST_F(Reps, TransistorDiagramHasDevices) {
  EXPECT_NE(rs_->transistorText.find("devices"), std::string::npos);
  // The core of the small chip has hundreds of transistors.
  EXPECT_NE(rs_->transistorText.find("enh"), std::string::npos);
}

TEST_F(Reps, LogicDiagramListsGates) {
  EXPECT_NE(rs_->logicText.find("LATCH"), std::string::npos);
  EXPECT_NE(rs_->logicText.find("PULLDN"), std::string::npos);
}

TEST_F(Reps, UserManualDocumentsEverySection) {
  const std::string& m = rs_->userManual;
  EXPECT_NE(m.find("MICROCODE FORMAT"), std::string::npos);
  EXPECT_NE(m.find("CORE ELEMENTS"), std::string::npos);
  EXPECT_NE(m.find("INSTRUCTION DECODER"), std::string::npos);
  EXPECT_NE(m.find("PADS"), std::string::npos);
  EXPECT_NE(m.find("TIMING"), std::string::npos);
  // Every element appears by name.
  for (const core::PlacedElement& pe : chip_->placed) {
    EXPECT_NE(m.find(pe.name), std::string::npos) << pe.name;
  }
}

TEST_F(Reps, BlockDiagramShowsStructure) {
  EXPECT_NE(rs_->blockText.find("DECODER"), std::string::npos);
  EXPECT_NE(rs_->blockText.find("CORE"), std::string::npos);
  EXPECT_NE(rs_->blockText.find("pads"), std::string::npos);
}

TEST_F(Reps, GenerateTextDispatchesAll) {
  for (reps::Representation r : reps::kAllRepresentations) {
    EXPECT_FALSE(reps::generateText(*chip_, r).empty())
        << reps::representationName(r);
  }
}

}  // namespace
}  // namespace bb
