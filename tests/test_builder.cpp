/// Tests for the programmatic ChipBuilder frontend: fluent construction,
/// build-time validation (Expected + diagnostics, never an assert), and
/// the two-frontend contract — for every sample and a builder edge-case
/// chip, `parseChip(desc.toString())` reproduces an equivalent ChipDesc
/// and compiles a bit-identical chip (CIF bytes) to the string path.

#include "core/digest.hpp"
#include "core/fingerprint.hpp"
#include "core/samples.hpp"
#include "core/session.hpp"
#include "icl/builder.hpp"
#include "icl/parser.hpp"
#include "reps/emitter.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bb {
namespace {

using namespace bb::icl;

std::string cifOf(const core::CompiledChip& chip) {
  std::ostringstream os;
  EXPECT_TRUE(reps::EmitterRegistry::global().emit(chip, "cif", os));
  return os.str();
}

/// The contract of the two frontends, asserted per description:
///  - toString() parses back to an equivalent description, and
///  - the typed path and the string path compile bit-identical masks.
void expectRoundTrip(const ChipDesc& desc, core::CompileOptions opts = {}) {
  const std::string src = desc.toString();

  DiagnosticList diags;
  auto parsed = parseChip(src, diags);
  ASSERT_TRUE(parsed.has_value()) << desc.name << ":\n" << diags.toString() << src;
  EXPECT_EQ(parsed->toString(), src) << desc.name;
  EXPECT_EQ(parsed->name, desc.name);
  EXPECT_EQ(parsed->dataWidth, desc.dataWidth);
  EXPECT_EQ(parsed->buses, desc.buses);
  EXPECT_EQ(parsed->vars, desc.vars);
  EXPECT_EQ(parsed->microcode.width, desc.microcode.width);
  ASSERT_EQ(parsed->microcode.fields.size(), desc.microcode.fields.size());
  for (std::size_t i = 0; i < desc.microcode.fields.size(); ++i) {
    EXPECT_EQ(parsed->microcode.fields[i].name, desc.microcode.fields[i].name);
    EXPECT_EQ(parsed->microcode.fields[i].lo, desc.microcode.fields[i].lo);
    EXPECT_EQ(parsed->microcode.fields[i].hi, desc.microcode.fields[i].hi);
  }

  auto viaDesc = core::compileChip(desc, opts);
  ASSERT_TRUE(viaDesc) << desc.name << ":\n" << viaDesc.diagnostics().toString();
  auto viaText = core::compileChip(src, opts);
  ASSERT_TRUE(viaText) << desc.name << ":\n" << viaText.diagnostics().toString();
  EXPECT_EQ(cifOf(**viaDesc), cifOf(**viaText))
      << desc.name << ": typed and string frontends diverge";
}

TEST(BuilderRoundTrip, EverySample) {
  expectRoundTrip(core::samples::smallChip(4));
  expectRoundTrip(core::samples::smallChip(16));
  expectRoundTrip(core::samples::largeChip(16, 8));
  expectRoundTrip(core::samples::largeChip(8, 4));
  expectRoundTrip(core::samples::prototypeChip());
  expectRoundTrip(core::samples::segmentedChip(8));
}

TEST(BuilderRoundTrip, SampleSourceWrappersRenderTheSameDescription) {
  EXPECT_EQ(core::samples::smallChipSource(4),
            core::samples::smallChip(4).toString());
  EXPECT_EQ(core::samples::largeChipSource(16, 8),
            core::samples::largeChip(16, 8).toString());
  EXPECT_EQ(core::samples::prototypeChipSource(),
            core::samples::prototypeChip().toString());
  EXPECT_EQ(core::samples::segmentedChipSource(8),
            core::samples::segmentedChip(8).toString());
}

TEST(BuilderRoundTrip, ConditionalEdgeCases) {
  // else branches, negated conditions, and a nested conditional — the
  // full shape of the paper's conditional assembly, built fluently.
  const ChipDesc desc =
      ChipBuilder("edges")
          .var("PROTOTYPE", true)
          .var("WIDE", false)
          .microcode(8, {field("op", 0, 3), field("x", 4, 7)})
          .dataWidth(4)
          .buses({"A", "B"})
          .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
          .element("register", "R0",
                   {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==2")},
                    {"drive", expr("op==3")}})
          .when("PROTOTYPE",
                {item("probe", "P0", {{"bus", sym("A")}, {"bit", num(0)}}),
                 cond("WIDE", {item("probe", "PW", {{"bus", sym("B")}, {"bit", num(3)}})})})
          .elseItems({item("probe", "PP", {{"bus", sym("B")}, {"bit", num(1)}})})
          .whenNot("WIDE", {item("probe", "PN", {{"bus", sym("A")}, {"bit", num(2)}})})
          .element("outport", "OUT", {{"bus", sym("B")}, {"sample", expr("op==3")}})
          .buildOrDie();

  expectRoundTrip(desc);
  expectRoundTrip(desc, core::CompileOptions::builder().var("PROTOTYPE", false).build());
  expectRoundTrip(desc, core::CompileOptions::builder().var("WIDE", true).build());
}

TEST(BuilderRoundTrip, CanonicalToStringIgnoresConstructionOrder) {
  // toString() is the hashing contract of the content-addressed chip
  // cache: the same design built with vars and element parameters in
  // different orders must render byte-identically and digest equally.
  const ChipDesc a =
      ChipBuilder("canon")
          .var("ALPHA", true)
          .var("BETA", false)
          .microcode(4, {field("op", 0, 3)})
          .dataWidth(4)
          .buses({"A", "B"})
          .element("register", "R0",
                   {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==1")},
                    {"drive", expr("op==2")}})
          .buildOrDie();
  const ChipDesc b =
      ChipBuilder("canon")
          .var("BETA", false)
          .var("ALPHA", true)
          .microcode(4, {field("op", 0, 3)})
          .dataWidth(4)
          .buses({"A", "B"})
          .element("register", "R0",
                   {{"drive", expr("op==2")}, {"load", expr("op==1")},
                    {"out", sym("B")}, {"in", sym("A")}})
          .buildOrDie();
  EXPECT_EQ(a.toString(), b.toString());
  EXPECT_EQ(core::Digest::of(a.toString()), core::Digest::of(b.toString()));
  EXPECT_EQ(core::requestDigest(a, {}), core::requestDigest(b, {}));

  // Order that carries meaning must keep changing the rendering: buses
  // index columns and element order is placement order.
  const ChipDesc swapped =
      ChipBuilder("canon")
          .var("ALPHA", true)
          .var("BETA", false)
          .microcode(4, {field("op", 0, 3)})
          .dataWidth(4)
          .buses({"B", "A"})
          .element("register", "R0",
                   {{"in", sym("A")}, {"out", sym("B")}, {"load", expr("op==1")},
                    {"drive", expr("op==2")}})
          .buildOrDie();
  EXPECT_NE(a.toString(), swapped.toString());
  EXPECT_NE(core::requestDigest(a, {}), core::requestDigest(swapped, {}));
}

TEST(BuilderRoundTrip, SameNameInBothBranchesIsAllowed) {
  // The two branches of one conditional are mutually exclusive: the
  // same instance name on both sides is a valid description.
  auto result = ChipBuilder("twin")
                    .microcode(4, {field("op", 0, 3)})
                    .dataWidth(4)
                    .bus("A")
                    .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
                    .when("FAST", {item("probe", "P", {{"bus", sym("A")}, {"bit", num(0)}})})
                    .elseItems({item("probe", "P", {{"bus", sym("A")}, {"bit", num(1)}})})
                    .build();
  EXPECT_TRUE(result.hasValue()) << result.diagnostics().toString();

  // ...but reusing a branch name afterwards is a duplicate.
  auto dup = ChipBuilder("twin")
                 .microcode(4, {field("op", 0, 3)})
                 .dataWidth(4)
                 .bus("A")
                 .when("FAST", {item("probe", "P", {{"bus", sym("A")}, {"bit", num(0)}})})
                 .element("probe", "P", {{"bus", sym("A")}, {"bit", num(1)}})
                 .build();
  EXPECT_FALSE(dup.hasValue());
  EXPECT_NE(dup.diagnostics().toString().find("duplicate element name 'P'"),
            std::string::npos)
      << dup.diagnostics().toString();
}

// ---- validation: invalid input surfaces diagnostics ---------------------

/// Expects a failed build whose diagnostics mention `needle`.
void expectBuildError(const core::Expected<ChipDesc>& result, std::string_view needle) {
  ASSERT_FALSE(result.hasValue());
  EXPECT_TRUE(result.diagnostics().hasErrors());
  EXPECT_NE(result.diagnostics().toString().find(needle), std::string::npos)
      << "diagnostics do not mention '" << needle << "':\n"
      << result.diagnostics().toString();
}

/// A minimal valid chip to perturb in each negative test.
ChipBuilder validChip() {
  ChipBuilder b("ok");
  b.microcode(8, {field("op", 0, 3)})
      .dataWidth(4)
      .bus("A")
      .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
      .element("outport", "OUT", {{"bus", sym("A")}, {"sample", expr("op==2")}});
  return b;
}

TEST(BuilderValidation, MinimalChipBuilds) {
  auto result = validChip().build();
  ASSERT_TRUE(result.hasValue()) << result.diagnostics().toString();
  EXPECT_FALSE(result.diagnostics().hasErrors());
}

TEST(BuilderValidation, DuplicateFieldName) {
  auto result = ChipBuilder("c")
                    .microcode(8, {field("op", 0, 3), field("op", 4, 7)})
                    .dataWidth(4)
                    .bus("A")
                    .element("inport", "IN", {{"bus", sym("A")}, {"drive", expr("op==1")}})
                    .build();
  expectBuildError(result, "duplicate microcode field 'op'");
}

TEST(BuilderValidation, BadBitRanges) {
  expectBuildError(validChip().field("rev", 5, 2).build(), "bad bit range [5:2]");
  expectBuildError(validChip().field("neg", -1, 2).build(), "bad bit range [-1:2]");
  expectBuildError(validChip().field("wide", 4, 8).build(),
                   "exceed microcode width 8");
}

TEST(BuilderValidation, EmptyCore) {
  auto result =
      ChipBuilder("hollow").microcode(8, {field("op", 0, 3)}).dataWidth(4).bus("A").build();
  expectBuildError(result, "core is empty");
}

TEST(BuilderValidation, EmptySectionsAndNames) {
  expectBuildError(ChipBuilder("").microcode(8).dataWidth(4).bus("A")
                       .element("inport", "IN", {})
                       .build(),
                   "chip name is empty");
  expectBuildError(validChip().microcode(0).build(), "microcode width must be positive");
  expectBuildError(validChip().dataWidth(0).build(), "data width must be positive");
  expectBuildError(ChipBuilder("nobus").microcode(8, {field("op", 0, 3)})
                       .dataWidth(4)
                       .element("inport", "IN", {})
                       .build(),
                   "declares no buses");
  expectBuildError(validChip().element("", "X", {}).build(), "empty kind");
  expectBuildError(validChip().element("probe", "", {}).build(), "empty name");
}

TEST(BuilderValidation, DuplicatesEverywhere) {
  expectBuildError(validChip().bus("A").build(), "duplicate bus 'A'");
  expectBuildError(validChip().var("V", true).var("V", false).build(),
                   "variable 'V' declared twice");
  expectBuildError(validChip().element("probe", "IN", {{"bus", sym("A")}}).build(),
                   "duplicate element name 'IN'");
  expectBuildError(
      validChip().element("probe", "P", {{"bit", num(0)}, {"bit", num(1)}}).build(),
      "parameter 'bit' given twice");
  // Duplicate keys are caught through every construction path, not just
  // element(): items nested in conditionals and else branches too.
  expectBuildError(
      validChip()
          .when("V", {item("probe", "P", {{"bit", num(0)}, {"bit", num(7)}})})
          .build(),
      "parameter 'bit' given twice");
  expectBuildError(
      validChip()
          .when("V", {cond("W", {item("probe", "P", {{"bus", sym("A")}, {"bus", sym("A")}})})})
          .build(),
      "parameter 'bus' given twice");
  expectBuildError(
      validChip()
          .when("V", {item("probe", "P1", {})})
          .elseItems({item("probe", "P2", {{"bit", num(0)}, {"bit", num(1)}})})
          .build(),
      "parameter 'bit' given twice");
}

TEST(BuilderValidation, ElseWithoutWhen) {
  expectBuildError(validChip().elseItems({item("probe", "P", {})}).build(),
                   "elseItems() without a preceding when()");
  // An elseItems after a plain element is just as wrong.
  auto result = validChip()
                    .element("probe", "P", {{"bus", sym("A")}, {"bit", num(0)}})
                    .elseItems({})
                    .build();
  EXPECT_FALSE(result.hasValue());
  // A second else on the same conditional is rejected too.
  auto twice = validChip()
                   .when("V", {item("probe", "P1", {})})
                   .elseItems({item("probe", "P2", {})})
                   .elseItems({item("probe", "P3", {})})
                   .build();
  expectBuildError(twice, "already has an else branch");
}

TEST(BuilderValidation, ErrorsAreCollectedNotShortCircuited) {
  // Several independent problems surface in one build() call, like the
  // parser's error recovery reporting multiple errors in one run.
  auto result = ChipBuilder("")
                    .microcode(0, {field("op", 0, 3), field("op", 0, 3)})
                    .dataWidth(-2)
                    .build();
  ASSERT_FALSE(result.hasValue());
  const std::string text = result.diagnostics().toString();
  for (const char* needle :
       {"chip name is empty", "microcode width must be positive",
        "duplicate microcode field 'op'", "data width must be positive",
        "declares no buses", "core is empty"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << " missing in:\n" << text;
  }
}

TEST(BuilderValidation, ValidateChipDescWorksOnHandMadeDescriptions) {
  ChipDesc desc;  // default-constructed: everything missing
  DiagnosticList diags;
  EXPECT_FALSE(validateChipDesc(desc, diags));
  EXPECT_TRUE(diags.hasErrors());

  DiagnosticList clean;
  EXPECT_TRUE(validateChipDesc(core::samples::smallChip(4), clean));
  EXPECT_FALSE(clean.hasErrors());
}

}  // namespace
}  // namespace bb
