/// Procedural cell model: bristles, boundaries, stretching (the paper's
/// "painless operation"), flattening, and the textual cell library.

#include "cell/flatten.hpp"
#include "cell/library.hpp"
#include "cell/stretch.hpp"

#include <gtest/gtest.h>

namespace bb::cell {
namespace {

using geom::lambda;
using geom::Point;
using geom::Rect;
using tech::Layer;

Cell makeTestCell() {
  Cell c("t");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(20), lambda(3)});           // below line
  c.addRect(Layer::Poly, Rect{lambda(2), lambda(2), lambda(4), lambda(12)});  // crossing
  c.addRect(Layer::Diffusion, Rect{0, lambda(8), lambda(4), lambda(10)});     // above line
  c.addStretch(StretchAxis::Y, lambda(5), "mid");
  c.setBoundary(Rect{0, 0, lambda(20), lambda(12)});
  Bristle b;
  b.name = "p";
  b.pos = {lambda(10), lambda(12)};
  b.side = Side::North;
  c.addBristle(b);
  return c;
}

TEST(Stretch, MovesWidensAndTranslates) {
  const Cell c = makeTestCell();
  const Cell s = stretched(c, StretchAxis::Y, lambda(5), lambda(7));
  // Below the line: unchanged.
  EXPECT_EQ(std::get<Rect>(s.shapes()[0].geo), (Rect{0, 0, lambda(20), lambda(3)}));
  // Crossing: widened by 7L.
  EXPECT_EQ(std::get<Rect>(s.shapes()[1].geo),
            (Rect{lambda(2), lambda(2), lambda(4), lambda(19)}));
  // Above: translated by 7L.
  EXPECT_EQ(std::get<Rect>(s.shapes()[2].geo), (Rect{0, lambda(15), lambda(4), lambda(17)}));
  // Boundary grew; bristle moved.
  EXPECT_EQ(s.height(), lambda(19));
  EXPECT_EQ(s.bristles()[0].pos.y, lambda(19));
}

TEST(Stretch, ZeroDeltaIsIdentity) {
  const Cell c = makeTestCell();
  const Cell s = stretched(c, StretchAxis::Y, lambda(5), 0);
  EXPECT_EQ(s.height(), c.height());
  EXPECT_EQ(std::get<Rect>(s.shapes()[1].geo), std::get<Rect>(c.shapes()[1].geo));
}

TEST(Stretch, ComposesAdditively) {
  // Stretching by a then b equals stretching by a+b (at the same line).
  const Cell c = makeTestCell();
  const Cell ab = stretched(stretched(c, StretchAxis::Y, lambda(5), lambda(3)),
                            StretchAxis::Y, lambda(5), lambda(4));
  const Cell once = stretched(c, StretchAxis::Y, lambda(5), lambda(7));
  ASSERT_EQ(ab.shapes().size(), once.shapes().size());
  for (std::size_t i = 0; i < ab.shapes().size(); ++i) {
    EXPECT_EQ(ab.shapes()[i].bbox(), once.shapes()[i].bbox()) << i;
  }
}

TEST(Stretch, GrowsAreaOnlyByCrossingShapes) {
  const Cell c = makeTestCell();
  const Cell s = stretched(c, StretchAxis::Y, lambda(5), lambda(7));
  // Total area grows exactly by (widened widths x delta).
  geom::Coord grew = 0;
  for (std::size_t i = 0; i < c.shapes().size(); ++i) {
    grew += s.shapes()[i].bbox().area() - c.shapes()[i].bbox().area();
  }
  EXPECT_EQ(grew, lambda(2) * lambda(7));  // only the crossing 2L-wide poly
}

TEST(StretchToExtent, DistributesOverLines) {
  Cell c("two");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(30), lambda(3)});
  c.addStretch(StretchAxis::X, lambda(10), "a");
  c.addStretch(StretchAxis::X, lambda(20), "b");
  c.setBoundary(Rect{0, 0, lambda(30), lambda(3)});
  const FitResult r = stretchedToExtent(c, StretchAxis::X, lambda(41));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.cell.width(), lambda(41));
}

TEST(StretchToExtent, RefusesShrink) {
  Cell c("s");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(30), lambda(3)});
  c.setBoundary(Rect{0, 0, lambda(30), lambda(3)});
  const FitResult r = stretchedToExtent(c, StretchAxis::X, lambda(10));
  EXPECT_FALSE(r.ok);
}

TEST(StretchToExtent, RefusesWithoutLines) {
  Cell c("n");
  c.addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  c.setBoundary(Rect{0, 0, lambda(10), lambda(3)});
  const FitResult r = stretchedToExtent(c, StretchAxis::X, lambda(20));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no stretch line"), std::string::npos);
}

TEST(Flatten, TransformsHierarchy) {
  CellLibrary lib;
  Cell* leaf = lib.create("leaf");
  leaf->addRect(Layer::Poly, Rect{0, 0, lambda(2), lambda(4)});
  Cell* mid = lib.create("mid");
  mid->addInstance(leaf, geom::Transform{geom::Orientation::R90, {lambda(10), 0}});
  Cell* top = lib.create("top");
  top->addInstance(mid, geom::Transform::translate({lambda(100), lambda(100)}));

  const FlatLayout flat = flatten(*top);
  ASSERT_EQ(flat.on(Layer::Poly).size(), 1u);
  // R90 of [0,0,2,4] is [-4,0,0,2]; +10 in x; +100,+100.
  EXPECT_EQ(flat.on(Layer::Poly)[0],
            (Rect{lambda(106), lambda(100), lambda(110), lambda(102)}));
}

TEST(Flatten, CountsAllLevels) {
  CellLibrary lib;
  Cell* leaf = lib.create("leaf");
  leaf->addRect(Layer::Metal, Rect{0, 0, 4, 4});
  Cell* top = lib.create("top");
  for (int i = 0; i < 5; ++i) {
    top->addInstance(leaf, geom::Transform::translate({i * 10, 0}));
  }
  top->addRect(Layer::Poly, Rect{0, 0, 2, 2});
  EXPECT_EQ(flatten(*top).totalCount(), 6u);
  EXPECT_EQ(top->totalShapeCount(), 6u);
}

TEST(Library, UniqueNamesAndLookup) {
  CellLibrary lib;
  Cell* a = lib.create("x");
  Cell* b = lib.create("x");
  EXPECT_NE(a->name(), b->name());
  EXPECT_EQ(lib.find(a->name()), a);
  EXPECT_EQ(lib.find("nosuch"), nullptr);
}

TEST(Library, SaveLoadRoundTrip) {
  CellLibrary lib;
  Cell* leaf = lib.create("leaf");
  leaf->addRect(Layer::Diffusion, Rect{0, 0, lambda(4), lambda(4)});
  Cell* c = lib.create("rt");
  c->addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  geom::Path w;
  w.width = lambda(2);
  w.pts = {{0, 0}, {lambda(8), 0}};
  c->addPath(Layer::Poly, w);
  c->addInstance(leaf, geom::Transform{geom::Orientation::MX, {lambda(5), lambda(5)}});
  c->addStretch(StretchAxis::Y, lambda(2), "line");
  c->setBoundary(Rect{0, 0, lambda(12), lambda(12)});
  Bristle b;
  b.name = "in";
  b.flavor = BristleFlavor::BusA;
  b.side = Side::West;
  b.pos = {0, lambda(6)};
  b.layer = Layer::Metal;
  b.width = lambda(3);
  c->addBristle(b);

  const std::string text = lib.saveCell(*c);
  CellLibrary lib2;
  Cell* leaf2 = lib2.create("leaf");
  leaf2->addRect(Layer::Diffusion, Rect{0, 0, lambda(4), lambda(4)});
  auto res = lib2.loadCell(text);
  ASSERT_NE(res.cell, nullptr) << res.error;
  EXPECT_EQ(res.cell->shapes().size(), c->shapes().size());
  EXPECT_EQ(res.cell->bristles().size(), 1u);
  EXPECT_EQ(res.cell->bristles()[0].flavor, BristleFlavor::BusA);
  EXPECT_EQ(res.cell->stretchLines().size(), 1u);
  EXPECT_EQ(res.cell->boundary(), c->boundary());
  EXPECT_EQ(res.cell->instances().size(), 1u);
  EXPECT_EQ(res.cell->instances()[0].placement.orient, geom::Orientation::MX);
}

TEST(Library, LoadRejectsMalformed) {
  CellLibrary lib;
  auto r1 = lib.loadCell("rect ND 0 0 4 4\n");
  EXPECT_EQ(r1.cell, nullptr);
  auto r2 = lib.loadCell("cell z\nrect XX 0 0 4 4\nend\n");
  EXPECT_EQ(r2.cell, nullptr);
  EXPECT_NE(r2.error.find("unknown layer"), std::string::npos);
}

TEST(Power, AggregatesThroughHierarchy) {
  CellLibrary lib;
  Cell* leaf = lib.create("leaf");
  leaf->setOwnPower(50.0);
  Cell* top = lib.create("top");
  top->setOwnPower(10.0);
  top->addInstance(leaf, {});
  top->addInstance(leaf, {});
  EXPECT_DOUBLE_EQ(top->powerDemand(), 110.0);
}

}  // namespace
}  // namespace bb::cell
