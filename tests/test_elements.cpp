/// Element generator tests: structure, controls, pads, power, voting and
/// per-kind behaviour (parameterized over data widths).

#include "elements/generators.hpp"
#include "elements/slicekit.hpp"
#include "icl/parser.hpp"

#include <gtest/gtest.h>

namespace bb::elements {
namespace {

icl::ChipDesc descFor(int dataWidth) {
  icl::DiagnosticList d;
  auto chip = icl::parseChip(
      "chip t; microcode width 8 { field op [0:3]; field sel [4:7]; } data width " +
          std::to_string(dataWidth) +
          "; buses A, B; core { register R (in=A,out=B,load=\"op==1\",drive=\"op==2\"); }",
      d);
  EXPECT_TRUE(chip.has_value()) << d.toString();
  return *chip;
}

icl::ElementDecl declOf(const std::string& src, const icl::ChipDesc& chip) {
  icl::DiagnosticList d;
  auto full = icl::parseChip(
      "chip t; microcode width 8 { field op [0:3]; field sel [4:7]; } data width " +
          std::to_string(chip.dataWidth) + "; buses A, B; core { " + src + " }",
      d);
  EXPECT_TRUE(full.has_value()) << d.toString();
  return std::get<icl::ElementDecl>(full->core.at(0).node);
}

class ElementsW : public ::testing::TestWithParam<int> {
 protected:
  GeneratedElement gen(const std::string& src) {
    chip_ = descFor(GetParam());
    decl_ = declOf(src, chip_);
    icl::DiagnosticList d;
    elem_ = makeElement(decl_, chip_, d);
    EXPECT_NE(elem_, nullptr) << d.toString();
    ctx_.dataWidth = chip_.dataWidth;
    ctx_.busCount = 2;
    ctx_.microcode = &chip_.microcode;
    ctx_.lib = &lib_;
    ctx_.pitch = elem_->naturalPitch(ctx_);
    return elem_->generate(ctx_);
  }

  icl::ChipDesc chip_;
  icl::ElementDecl decl_;
  std::unique_ptr<Element> elem_;
  cell::CellLibrary lib_;
  ElementContext ctx_;
};

TEST_P(ElementsW, RegisterStructure) {
  const GeneratedElement ge =
      gen("register R (in=A, out=B, load=\"op==1\", drive=\"op==2\");");
  ASSERT_NE(ge.column, nullptr);
  EXPECT_EQ(ge.column->height(), ctx_.pitch * GetParam());
  ASSERT_EQ(ge.controls.size(), 3u);  // ld, ph2, dr
  EXPECT_TRUE(ge.usesBus[0]);
  EXPECT_TRUE(ge.usesBus[1]);
  EXPECT_GT(ge.power_ua, 0);  // one load per bit
  // Control bristles on the north edge, inside the column width.
  for (const cell::Bristle& b : ge.column->bristles()) {
    if (b.flavor != cell::BristleFlavor::Control) continue;
    EXPECT_EQ(b.pos.y, ge.column->height());
    EXPECT_GE(b.pos.x, 0);
    EXPECT_LE(b.pos.x, ge.column->width());
  }
}

TEST_P(ElementsW, InportPadBristlesAtLanes) {
  const GeneratedElement ge = gen("inport IN (bus=A, drive=\"op==1\");");
  int pads = 0;
  geom::Coord lastX = -1;
  for (const cell::Bristle& b : ge.column->bristles()) {
    if (b.flavor != cell::BristleFlavor::PadIn) continue;
    ++pads;
    EXPECT_EQ(b.pos.y, 0) << "inport pads exit south";
    EXPECT_GT(b.pos.x, lastX) << "lane x must grow with bit index";
    lastX = b.pos.x;
  }
  EXPECT_EQ(pads, GetParam());
}

TEST_P(ElementsW, RegfileControlsPerRow) {
  const GeneratedElement ge =
      gen("regfile RF (n=4, select=sel, in=A, out=B, write=\"op==1\", read=\"op==2\");");
  EXPECT_EQ(ge.controls.size(), 3u * 4u);
  // Row decodes embed the select comparison.
  EXPECT_NE(ge.controls[0].decode.find("sel==0"), std::string::npos);
  EXPECT_NE(ge.controls[3].decode.find("sel==1"), std::string::npos);
}

TEST_P(ElementsW, ConstantUsesNoSiliconForOnes) {
  const GeneratedElement allOnes = gen("constant C (bus=A, value=" +
                                       std::to_string((1ll << GetParam()) - 1) +
                                       ", drive=\"op==3\");");
  EXPECT_DOUBLE_EQ(allOnes.power_ua, 0.0);
  cell::CellLibrary lib2;
  ctx_.lib = &lib2;
  // All zeros: every bit needs a pull chain (non-zero shapes).
  icl::DiagnosticList d;
  auto z = makeElement(declOf("constant Z (bus=A, value=0, drive=\"op==3\");", chip_),
                       chip_, d);
  ASSERT_NE(z, nullptr);
  const GeneratedElement zeros = z->generate(ctx_);
  EXPECT_GT(zeros.column->totalShapeCount(), allOnes.column->totalShapeCount());
}

TEST_P(ElementsW, ShifterCrossBitLogic) {
  const GeneratedElement ge =
      gen("shifter S (in=A, out=B, dist=2, load=\"op==1\", drive=\"op==2\");");
  (void)ge;
  netlist::LogicModel lm;
  elem_->emitLogic(lm, ctx_);
  // Bit j of the output bus is driven from bit j-2 (left shift).
  const int D = GetParam();
  for (int j = 2; j < D; ++j) {
    bool found = false;
    for (const netlist::Gate& g : lm.gates()) {
      if (g.kind != netlist::GateKind::PullDown) continue;
      if (lm.signalName(g.out) != "busB" + std::to_string(j)) continue;
      for (int in : g.in) {
        found |= lm.signalName(in) == "S.vb" + std::to_string(j - 2);
      }
    }
    EXPECT_TRUE(found) << "bit " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ElementsW, ::testing::Values(2, 4, 8, 16));

TEST(Elements, UnknownKindDiagnosed) {
  const icl::ChipDesc chip = descFor(4);
  icl::DiagnosticList d;
  icl::ElementDecl decl;
  decl.kind = "frobnicator";
  decl.name = "F";
  EXPECT_EQ(makeElement(decl, chip, d), nullptr);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Elements, MissingDecodeDiagnosed) {
  const icl::ChipDesc chip = descFor(4);
  icl::DiagnosticList d;
  auto e = makeElement(declOf("register R (in=A, out=B);", chip), chip, d);
  (void)e;
  EXPECT_TRUE(d.hasErrors());
}

TEST(Elements, BadBusDiagnosed) {
  const icl::ChipDesc chip = descFor(4);
  icl::DiagnosticList d;
  (void)makeElement(
      declOf("register R (in=C, out=B, load=\"op==1\", drive=\"op==2\");", chip), chip, d);
  EXPECT_TRUE(d.hasErrors());
}

TEST(Elements, VoteReportsNaturalPitch) {
  const icl::ChipDesc chip = descFor(4);
  icl::DiagnosticList d;
  auto reg = makeElement(declOf("register R (in=A,out=B,load=\"op==1\",drive=\"op==2\");",
                                chip),
                         chip, d);
  auto alu = makeElement(
      declOf("alu U (a=A,b=B,out=A,op=sel,load=\"op==1\",drive=\"op==2\");", chip), chip, d);
  ASSERT_TRUE(reg && alu) << d.toString();
  ElementContext ctx;
  ParameterBallot ballot;
  reg->vote(ballot, ctx);
  EXPECT_EQ(ballot.maxOf("pitch"), contract().naturalPitch);
  alu->vote(ballot, ctx);
  EXPECT_GT(ballot.maxOf("pitch"), contract().naturalPitch);
}

TEST(Elements, FitSliceStretchesAndWidensRails) {
  cell::CellLibrary lib;
  ElementContext ctx;
  ctx.dataWidth = 1;
  ctx.lib = &lib;
  ctx.pitch = contract().naturalPitch + lam(12);
  ctx.railWiden = lam(3);
  SliceBuilder sb(lib, "fit_t", contract().naturalPitch);
  sb.addPass();
  cell::Cell* raw = sb.finish();
  cell::Cell* fitted = fitSlice(ctx, raw);
  EXPECT_EQ(fitted->height(), ctx.pitch + 2 * ctx.railWiden);
}

}  // namespace
}  // namespace bb::elements
