/// Baseline tests: the hand-layout comparators behave as the paper's
/// argument predicts (stretching beats variable pitch + routing; the
/// compiled area is within the claimed band of ideal hand layout).

#include "baseline/handlayout.hpp"
#include "core/session.hpp"
#include "core/samples.hpp"
#include "icl/parser.hpp"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(Baseline, RoutedCoreBuildsWithChannels) {
  // Parse the rendered source here (rather than taking the typed sample
  // directly) so the baseline keeps covering the parser frontend too.
  icl::DiagnosticList diags;
  auto desc = icl::parseChip(core::samples::smallChipSource(8), diags);
  ASSERT_TRUE(desc.has_value()) << diags.toString();
  cell::CellLibrary lib;
  const auto res = baseline::buildRoutedCore(*desc, {}, lib, diags);
  ASSERT_TRUE(res.ok) << res.error;
  // The ALU's pitch differs from everyone else's: at least two channels
  // (entering and leaving the ALU).
  EXPECT_GE(res.channels, 2u);
  EXPECT_GT(res.routingWidth, 0);
  EXPECT_GT(res.area, 0);
}

TEST(Baseline, StretchedCoreBeatsRoutedCore) {
  // The design decision the paper states: "To save the space and costly
  // routing needed if cell widths vary, a design constraint states that
  // all cells must be of equal width."
  auto compiled = core::compileChip(core::samples::smallChip(8));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  auto chip = std::move(*compiled);

  icl::DiagnosticList d2;
  const icl::ChipDesc desc = core::samples::smallChip(8);
  cell::CellLibrary lib;
  const auto routed = baseline::buildRoutedCore(desc, {}, lib, d2);
  ASSERT_TRUE(routed.ok) << routed.error;

  EXPECT_LT(chip->stats.coreArea, routed.area)
      << "stretching to a common pitch should beat river routing";
}

TEST(Baseline, CompiledWithinBandOfIdealHand) {
  // The paper: compiled chips land within roughly +/-10% of hand layout.
  // Our ideal-hand bound has zero routing overhead, so compiled should
  // land above it but within ~35% (the claim's shape).
  auto compiled = core::compileChip(core::samples::smallChip(8));
  ASSERT_TRUE(compiled) << compiled.diagnostics().toString();
  auto chip = std::move(*compiled);
  const geom::Coord hand = baseline::idealHandCoreArea(*chip);
  ASSERT_GT(hand, 0);
  const double ratio = static_cast<double>(chip->stats.coreArea) / static_cast<double>(hand);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 1.35) << "compiled core should stay close to ideal hand area";
}

TEST(Baseline, RoutedCoreHonorsConditionalAssembly) {
  icl::DiagnosticList diags;
  const icl::ChipDesc desc = core::samples::prototypeChip();
  cell::CellLibrary lib1, lib2;
  const auto proto = baseline::buildRoutedCore(desc, {{"PROTOTYPE", true}}, lib1, diags);
  const auto prod = baseline::buildRoutedCore(desc, {{"PROTOTYPE", false}}, lib2, diags);
  ASSERT_TRUE(proto.ok && prod.ok);
  EXPECT_GT(proto.width, prod.width);
}

}  // namespace
}  // namespace bb
