/// Mask-output tests: CIF round trip, GDS structural decode, SVG sanity.

#include "cell/flatten.hpp"
#include "layout/cif.hpp"
#include "layout/cif_parser.hpp"
#include "layout/gds.hpp"
#include "layout/svg.hpp"

#include <gtest/gtest.h>

namespace bb::layout {
namespace {

using cell::Cell;
using cell::CellLibrary;
using geom::lambda;
using geom::Rect;
using tech::Layer;

void buildHierarchy(CellLibrary& lib, Cell*& top) {
  Cell* leaf = lib.create("leaf");
  leaf->addRect(Layer::Diffusion, Rect{0, 0, lambda(4), lambda(8)});
  leaf->addRect(Layer::Poly, Rect{-lambda(2), lambda(2), lambda(6), lambda(4)});
  geom::Path w;
  w.width = lambda(3);
  w.pts = {{0, lambda(10)}, {lambda(20), lambda(10)}, {lambda(20), lambda(20)}};
  leaf->addPath(Layer::Metal, w);
  geom::Polygon poly;
  poly.pts = {{0, 0}, {lambda(6), 0}, {lambda(6), lambda(6)}};
  leaf->addPolygon(Layer::Implant, poly);

  top = lib.create("top");
  top->addInstance(leaf, geom::Transform::translate({0, 0}));
  top->addInstance(leaf, geom::Transform{geom::Orientation::R90, {lambda(40), 0}});
  top->addInstance(leaf, geom::Transform{geom::Orientation::MX, {lambda(80), lambda(40)}});
}

TEST(Cif, WritesAllShapeKinds) {
  CellLibrary lib;
  Cell* top = nullptr;
  buildHierarchy(lib, top);
  const std::string cif = writeCif(*top);
  const CifStats st = cifStats(cif);
  EXPECT_EQ(st.symbols, 2u);
  EXPECT_EQ(st.boxes, 2u);     // leaf's two rects
  EXPECT_EQ(st.wires, 1u);
  EXPECT_EQ(st.polygons, 1u);
  EXPECT_EQ(st.calls, 3u + 1u);  // three instances + top-level call
  EXPECT_NE(cif.find("L ND;"), std::string::npos);
  EXPECT_NE(cif.find("E"), std::string::npos);
}

TEST(Cif, RoundTripPreservesGeometry) {
  CellLibrary lib;
  Cell* top = nullptr;
  buildHierarchy(lib, top);
  const std::string cif = writeCif(*top);

  CellLibrary lib2;
  const CifParseResult res = parseCif(cif, lib2);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_NE(res.top, nullptr);
  EXPECT_EQ(res.top->name(), "top");

  // The flattened artwork must be identical (paths become rects when
  // parsed back, so compare per-layer flattened rect sets).
  const cell::FlatLayout a = cell::flatten(*top);
  const cell::FlatLayout b = cell::flatten(*res.top);
  for (tech::Layer l : tech::kAllLayers) {
    auto va = a.on(l);
    auto vb = b.on(l);
    std::sort(va.begin(), va.end(), [](const Rect& x, const Rect& y) {
      return std::tie(x.x0, x.y0, x.x1, x.y1) < std::tie(y.x0, y.y0, y.x1, y.y1);
    });
    std::sort(vb.begin(), vb.end(), [](const Rect& x, const Rect& y) {
      return std::tie(x.x0, x.y0, x.x1, x.y1) < std::tie(y.x0, y.y0, y.x1, y.y1);
    });
    EXPECT_EQ(va, vb) << "layer " << tech::layerName(l);
  }
  EXPECT_EQ(a.polygons.size(), b.polygons.size());
}

TEST(Cif, ParserRejectsGarbage) {
  CellLibrary lib;
  EXPECT_FALSE(parseCif("DS 1 25 1; B 4;", lib).ok);
  CellLibrary lib2;
  EXPECT_FALSE(parseCif("", lib2).ok);
  CellLibrary lib3;
  EXPECT_FALSE(parseCif("DS 1 25 1; C 99 T 0 0; DF; E", lib3).ok);  // undefined call
}

TEST(Cif, CommentsSkipped) {
  CellLibrary lib;
  const auto res = parseCif("( a (nested) comment ); DS 1 125 2; 9 x; L NM; B 8 8 4 4; DF; E",
                            lib);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.top->name(), "x");
  EXPECT_EQ(res.top->shapes().size(), 1u);
}

TEST(Gds, StreamWellFormed) {
  CellLibrary lib;
  Cell* top = nullptr;
  buildHierarchy(lib, top);
  const auto bytes = writeGds(*top);
  const GdsStats st = gdsStats(bytes);
  EXPECT_TRUE(st.wellFormed);
  EXPECT_EQ(st.structures, 2u);
  EXPECT_EQ(st.boundaries, 3u);  // 2 rects + 1 polygon
  EXPECT_EQ(st.paths, 1u);
  EXPECT_EQ(st.srefs, 3u);
  ASSERT_EQ(st.names.size(), 2u);
  EXPECT_EQ(st.names[1], "top");
}

TEST(Gds, DeterministicOutput) {
  CellLibrary lib;
  Cell* top = nullptr;
  buildHierarchy(lib, top);
  EXPECT_EQ(writeGds(*top), writeGds(*top));
}

TEST(Svg, ContainsShapesAndBristles) {
  CellLibrary lib;
  Cell* c = lib.create("svg");
  c->addRect(Layer::Metal, Rect{0, 0, lambda(10), lambda(3)});
  cell::Bristle b;
  b.name = "pin";
  b.pos = {lambda(5), lambda(3)};
  c->addBristle(b);
  const std::string svg = renderSvg(*c);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("rect"), std::string::npos);
  EXPECT_NE(svg.find("pin"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace bb::layout
